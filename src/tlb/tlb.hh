/**
 * @file
 * A set-associative TLB model. Entries carry, besides the usual
 * translation metadata, the 4-bit MPK protection key (MPK and MPK
 * virtualization schemes) or the 10-bit domain id (domain
 * virtualization scheme) — the distinguishing state the two designs
 * keep per TLB entry.
 */

#ifndef PMODV_TLB_TLB_HH
#define PMODV_TLB_TLB_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/plru.hh"
#include "common/types.hh"
#include "stats/stats.hh"

namespace pmodv::tlb
{

/** One TLB entry. */
struct TlbEntry
{
    bool valid = false;
    Addr vpn = 0; ///< Virtual page number (va >> pageShift).
    PageSize pageSize = PageSize::Size4K;
    Perm pagePerm = Perm::ReadWrite;
    MemClass memClass = MemClass::Dram;
    /** MPK protection key cached with the translation (kNullKey when
     *  the page is domainless). */
    ProtKey key = kNullKey;
    /** Domain id cached with the translation (domain-virtualization
     *  design only; kNullDomain otherwise). */
    DomainId domain = kNullDomain;
};

/** Static configuration of one TLB level. */
struct TlbParams
{
    std::string name = "tlb";
    unsigned entries = 64;
    unsigned assoc = 4;
    /** Cycles added to the translation when this level must be read
     *  (the L1 lookup is folded into the load pipeline → 0). */
    Cycles accessLatency = 0;
};

/**
 * One level of set-associative TLB.
 *
 * All ways live in one flat vector (set-major) and the per-set
 * replacement trackers are stored by value, so a lookup touches two
 * contiguous arrays instead of chasing per-set heap blocks. A per
 * page-size count of valid entries lets lookups skip the 2M/1G index
 * probes entirely when no entry of that size is cached — the common
 * case for 4K-only traces.
 */
class Tlb : public stats::Group
{
  public:
    Tlb(stats::Group *parent, const TlbParams &params);

    const TlbParams &params() const { return params_; }
    unsigned numSets() const { return numSets_; }

    /**
     * Look up the translation of @p va; nullptr on miss. Hit updates
     * replacement state and statistics. The returned pointer stays
     * valid until the next insert/flush.
     */
    TlbEntry *lookup(Addr va);

    /** Probe without touching stats or replacement state. */
    const TlbEntry *probe(Addr va) const;

    /**
     * Insert @p entry (evicting pseudo-LRU within the set if full).
     * Returns a reference to the installed entry.
     */
    TlbEntry &insert(const TlbEntry &entry);

    /** Invalidate everything; returns the number of valid entries. */
    unsigned flushAll();

    /** Invalidate translations inside [base, base+size). */
    unsigned flushRange(Addr base, Addr size);

    /** Invalidate translations carrying protection key @p key. */
    unsigned flushKey(ProtKey key);

    /** Invalidate translations carrying domain @p domain. */
    unsigned flushDomain(DomainId domain);

    /** Number of currently valid entries (O(entries)). */
    unsigned validCount() const;

    stats::Scalar hits;
    stats::Scalar misses;
    stats::Scalar evictions; ///< Valid entries displaced by capacity.
    stats::Scalar flushedEntries;
    stats::Formula missRate;

  private:
    std::size_t setIndexFor(Addr vpn) const
    {
        return vpn & (numSets_ - 1);
    }

    /** First way of set @p si in the flat way array. */
    TlbEntry *setWays(std::size_t si)
    {
        return ways_.data() + si * params_.assoc;
    }
    const TlbEntry *setWays(std::size_t si) const
    {
        return ways_.data() + si * params_.assoc;
    }

    void dropEntry(TlbEntry &e)
    {
        e.valid = false;
        --sizeValid_[static_cast<unsigned>(e.pageSize)];
    }

    template <typename Pred>
    unsigned flushIf(Pred pred);

    TlbParams params_;
    unsigned numSets_;
    std::vector<TlbEntry> ways_; ///< numSets_ x assoc, set-major.
    std::vector<TreePlru> plru_; ///< One tracker per set, by value.
    /** Valid-entry count per PageSize (indexed by the enum value). */
    unsigned sizeValid_[3] = {0, 0, 0};
};

} // namespace pmodv::tlb

#endif // PMODV_TLB_TLB_HH
