/**
 * @file
 * A set-associative TLB model. Entries carry, besides the usual
 * translation metadata, the 4-bit MPK protection key (MPK and MPK
 * virtualization schemes) or the 10-bit domain id (domain
 * virtualization scheme) — the distinguishing state the two designs
 * keep per TLB entry.
 */

#ifndef PMODV_TLB_TLB_HH
#define PMODV_TLB_TLB_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/plru.hh"
#include "common/types.hh"
#include "stats/stats.hh"

namespace pmodv::tlb
{

/** One TLB entry. */
struct TlbEntry
{
    bool valid = false;
    Addr vpn = 0; ///< Virtual page number (va >> pageShift).
    PageSize pageSize = PageSize::Size4K;
    Perm pagePerm = Perm::ReadWrite;
    MemClass memClass = MemClass::Dram;
    /** MPK protection key cached with the translation (kNullKey when
     *  the page is domainless). */
    ProtKey key = kNullKey;
    /** Domain id cached with the translation (domain-virtualization
     *  design only; kNullDomain otherwise). */
    DomainId domain = kNullDomain;
};

/** Static configuration of one TLB level. */
struct TlbParams
{
    std::string name = "tlb";
    unsigned entries = 64;
    unsigned assoc = 4;
    /** Cycles added to the translation when this level must be read
     *  (the L1 lookup is folded into the load pipeline → 0). */
    Cycles accessLatency = 0;
};

/** One level of set-associative TLB. */
class Tlb : public stats::Group
{
  public:
    Tlb(stats::Group *parent, const TlbParams &params);

    const TlbParams &params() const { return params_; }
    unsigned numSets() const { return numSets_; }

    /**
     * Look up the translation of @p va; nullptr on miss. Hit updates
     * replacement state and statistics. The returned pointer stays
     * valid until the next insert/flush.
     */
    TlbEntry *lookup(Addr va);

    /** Probe without touching stats or replacement state. */
    const TlbEntry *probe(Addr va) const;

    /**
     * Insert @p entry (evicting pseudo-LRU within the set if full).
     * Returns a reference to the installed entry.
     */
    TlbEntry &insert(const TlbEntry &entry);

    /** Invalidate everything; returns the number of valid entries. */
    unsigned flushAll();

    /** Invalidate translations inside [base, base+size). */
    unsigned flushRange(Addr base, Addr size);

    /** Invalidate translations carrying protection key @p key. */
    unsigned flushKey(ProtKey key);

    /** Invalidate translations carrying domain @p domain. */
    unsigned flushDomain(DomainId domain);

    /** Number of currently valid entries (O(entries)). */
    unsigned validCount() const;

    stats::Scalar hits;
    stats::Scalar misses;
    stats::Scalar evictions; ///< Valid entries displaced by capacity.
    stats::Scalar flushedEntries;
    stats::Formula missRate;

  private:
    struct Set
    {
        std::vector<TlbEntry> ways;
        std::unique_ptr<TreePlru> plru;
    };

    std::size_t setIndexFor(Addr vpn) const
    {
        return vpn & (numSets_ - 1);
    }

    template <typename Pred>
    unsigned flushIf(Pred pred);

    TlbParams params_;
    unsigned numSets_;
    std::vector<Set> sets_;
};

} // namespace pmodv::tlb

#endif // PMODV_TLB_TLB_HH
