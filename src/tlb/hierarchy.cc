#include "tlb/hierarchy.hh"

#include "common/bitutil.hh"

namespace pmodv::tlb
{

TlbHierarchy::TlbHierarchy(stats::Group *parent,
                           const TlbHierarchyParams &params,
                           const AddressSpace &space)
    : stats::Group(parent, "dtlb"),
      walks(this, "walks", "page table walks performed"),
      missLatency(this, "miss_latency",
                  "translation cycles added per L1 TLB miss"),
      params_(params), space_(space), fillPolicy_(&defaultPolicy_)
{
    l1_ = std::make_unique<Tlb>(this, params_.l1);
    l2_ = std::make_unique<Tlb>(this, params_.l2);
}

TranslateResult
TlbHierarchy::translate(ThreadId tid, Addr va)
{
    TranslateResult res;

    if (TlbEntry *e = l1_->lookup(va)) {
        res.entry = e;
        res.l1Hit = true;
        return res;
    }

    res.latency += params_.l2.accessLatency;
    if (TlbEntry *e = l2_->lookup(va)) {
        // Promote into L1 (fresh: the L1 lookup above just missed).
        res.entry = &l1_->insertFresh(*e);
        res.l2Hit = true;
        missLatency.sample(res.latency);
        return res;
    }

    // Full miss: page walk.
    if (defer_)
        ++pendWalks_;
    else
        ++walks;
    res.walked = true;
    res.latency += params_.walkLatency;

    const Region *region = space_.find(va);
    TlbEntry entry;
    if (region) {
        entry.pageSize = region->pageSize;
        entry.vpn = va >> pageShift(region->pageSize);
        entry.pagePerm = region->pagePerm;
        entry.memClass = region->memClass;
        // Protection metadata (key / domain id) is the fill policy's
        // job: stock MPK has no domain field, the domain-virt design
        // fills it from its DRT walk.
    } else {
        // Unmapped VAs still get a (domainless, DRAM) translation so
        // the timing model can charge something sensible; a real
        // machine would fault, and the protection layer flags it.
        entry.vpn = va >> pageShift(PageSize::Size4K);
        entry.pagePerm = Perm::ReadWrite;
    }
    entry.key = kNullKey;

    res.fillExtra = fillPolicy_->fill(tid, va, region, entry);

    // Fresh in both levels: the lookups above just missed this page,
    // and the fill policy can only have *removed* entries since.
    l2_->insertFresh(entry);
    res.entry = &l1_->insertFresh(entry);
    missLatency.sample(res.latency + res.fillExtra);
    return res;
}

unsigned
TlbHierarchy::flushRange(Addr base, Addr size)
{
    return l1_->flushRange(base, size) + l2_->flushRange(base, size);
}

unsigned
TlbHierarchy::flushKey(ProtKey key)
{
    return l1_->flushKey(key) + l2_->flushKey(key);
}

unsigned
TlbHierarchy::flushAll()
{
    return l1_->flushAll() + l2_->flushAll();
}

void
TlbHierarchy::setStatsDeferred(bool defer)
{
    if (!defer && defer_)
        flushDeferredStats();
    defer_ = defer;
    l1_->setStatsDeferred(defer);
    l2_->setStatsDeferred(defer);
}

void
TlbHierarchy::flushDeferredStats()
{
    if (pendWalks_) {
        walks += pendWalks_;
        pendWalks_ = 0;
    }
    l1_->flushDeferredStats();
    l2_->flushDeferredStats();
}

} // namespace pmodv::tlb
