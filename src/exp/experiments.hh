/**
 * @file
 * Experiment drivers behind the bench binaries: each function
 * generates the relevant workload trace once and replays it under
 * every scheme the experiment needs, returning the numbers the
 * paper's tables/figures report.
 */

#ifndef PMODV_EXP_EXPERIMENTS_HH
#define PMODV_EXP_EXPERIMENTS_HH

#include <map>
#include <string>
#include <vector>

#include "core/replay.hh"
#include "workloads/micro/micro.hh"
#include "workloads/whisper/whisper.hh"

namespace pmodv::exp
{

/** One WHISPER benchmark's Table V row. */
struct WhisperRow
{
    std::string benchmark;
    double switchesPerSec = 0;
    double overheadMpkPct = 0;
    double overheadMpkVirtPct = 0;
    double overheadDomainVirtPct = 0;
};

/** Run one WHISPER benchmark under {none, mpk, mpk_virt, domain_virt}. */
WhisperRow runWhisper(const std::string &name,
                      const workloads::WhisperParams &wparams,
                      const core::SimConfig &config);

/** Table VII-style overhead breakdown (percent over lowerbound). */
struct Breakdown
{
    double permissionChangePct = 0;
    double entryChangesPct = 0;
    double tableMissPct = 0;     ///< DTT misses / PTLB misses row.
    double tlbInvalidationPct = 0; ///< Incl. induced TLB misses (MPK virt).
    double accessLatencyPct = 0; ///< Domain virt only.
    double totalPct = 0;
};

/** One (benchmark, pmo-count) sweep point. */
struct MicroPoint
{
    std::string benchmark;
    unsigned numPmos = 0;
    double switchesPerSec = 0;
    double lowerboundOverheadPct = 0; ///< Over the unprotected baseline.
    /** Overhead over lowerbound, percent, per scheme. */
    std::map<arch::SchemeKind, double> overheadPct;
    /** Breakdown per proposed scheme. */
    std::map<arch::SchemeKind, Breakdown> breakdown;
    /** Eviction/shootdown counts per scheme (diagnostics). */
    std::map<arch::SchemeKind, double> keyRemaps;
};

/**
 * Run one microbenchmark at one PMO count under the given schemes
 * (the baseline and lowerbound pipelines are always added).
 */
MicroPoint runMicroPoint(const std::string &bench,
                         const workloads::MicroParams &mparams,
                         const core::SimConfig &config,
                         const std::vector<arch::SchemeKind> &schemes);

/** log2 of an overhead percentage, the paper's Figure 6 y-axis. */
double log2Pct(double pct);

} // namespace pmodv::exp

#endif // PMODV_EXP_EXPERIMENTS_HH
