/**
 * @file
 * DEPRECATED experiment drivers, kept as thin shims over the
 * SweepSpec/ExperimentSuite/Executor API in exp/executor.hh and
 * exp/suite.hh.
 *
 * Migration: build an exp::MicroPointSpec / exp::WhisperPointSpec
 * (or a whole exp::SweepSpec grid), register it with an
 * exp::ExperimentSuite, and run it on a common::ThreadPool — see
 * the "Running experiments" section of EXPERIMENTS.md. The row types
 * (WhisperRow, MicroPoint, Breakdown) now live in exp/executor.hh
 * and are re-exported here unchanged.
 */

#ifndef PMODV_EXP_EXPERIMENTS_HH
#define PMODV_EXP_EXPERIMENTS_HH

#include "exp/executor.hh"

namespace pmodv::exp
{

/**
 * Run one WHISPER benchmark under {none, mpk, mpk_virt, domain_virt}
 * on the calling thread.
 */
[[deprecated("build a WhisperPointSpec and run it through "
             "exp::Executor / exp::ExperimentSuite instead")]]
WhisperRow runWhisper(const std::string &name,
                      const workloads::WhisperParams &wparams,
                      const core::SimConfig &config);

/**
 * Run one microbenchmark at one PMO count under the given schemes
 * (the baseline and lowerbound pipelines are always added) on the
 * calling thread.
 */
[[deprecated("build a MicroPointSpec and run it through "
             "exp::Executor / exp::ExperimentSuite instead")]]
MicroPoint runMicroPoint(const std::string &bench,
                         const workloads::MicroParams &mparams,
                         const core::SimConfig &config,
                         const std::vector<arch::SchemeKind> &schemes);

} // namespace pmodv::exp

#endif // PMODV_EXP_EXPERIMENTS_HH
