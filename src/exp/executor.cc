#include "exp/executor.hh"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <future>
#include <thread>

#include "common/logging.hh"
#include "exp/trace_export.hh"
#include "pmo/pmo_namespace.hh"
#include "stats/export.hh"

namespace pmodv::exp
{

using arch::SchemeKind;

double
log2Pct(double pct)
{
    return pct <= 0 ? 0.0 : std::log2(pct);
}

namespace
{

/**
 * The in-flight state of one experiment point. The capture task
 * populates everything except `rows`; each replay task drives exactly
 * one System. Futures synchronize: the coordinating thread reads
 * `replays` only after the capture future completed, and `systems`
 * only after every replay future completed.
 */
struct PointRun
{
    std::vector<SchemeKind> kinds; ///< One per System, in order.
    std::shared_ptr<const trace::TraceBuffer> buffer;
    trace::CountingSink counter;
    std::vector<std::unique_ptr<core::System>> systems;
    std::vector<std::future<void>> replays;
};

/**
 * Build the Systems for `run.kinds`, then enqueue one replay task per
 * System. Called at the tail of a capture task, once `run.buffer`
 * is frozen.
 */
void
launchReplays(common::ThreadPool &pool, PointRun &run,
              const core::SimConfig &config)
{
    // The buffer already carries its one-pass summary; no rescan.
    run.counter.addSummary(run.buffer->summary());
    run.systems.reserve(run.kinds.size());
    run.replays.reserve(run.kinds.size());
    for (SchemeKind kind : run.kinds) {
        run.systems.push_back(
            std::make_unique<core::System>(config, kind));
        core::System *sys = run.systems.back().get();
        auto buffer = run.buffer;
        run.replays.push_back(pool.submit([sys, buffer] {
            sys->replayBatch(buffer->records());
            sys->finish();
        }));
    }
}

/** The system replaying @p kind in @p run; panics if absent. */
const core::System &
systemOf(const PointRun &run, SchemeKind kind)
{
    for (std::size_t i = 0; i < run.kinds.size(); ++i) {
        if (run.kinds[i] == kind)
            return *run.systems[i];
    }
    panic("no system for scheme '%s' in this point",
          arch::schemeName(kind));
}

double
overheadOver(const PointRun &run, SchemeKind kind, SchemeKind baseline)
{
    const double base =
        static_cast<double>(systemOf(run, baseline).totalCycles());
    const double val =
        static_cast<double>(systemOf(run, kind).totalCycles());
    return base == 0 ? 0.0 : (val - base) / base;
}

Breakdown
computeBreakdown(const core::System &sys, const core::System &baseline)
{
    // Table VII reports each source as a percentage of the
    // *unprotected baseline* execution time; Total is the full
    // protection overhead (and therefore includes the
    // permission-change row that the lowerbound also pays).
    Breakdown b;
    const double base = static_cast<double>(baseline.totalCycles());
    if (base == 0)
        return b;
    const auto &s = sys.scheme();
    b.permissionChangePct = s.cycPermissionChange.value() / base * 100.0;
    b.entryChangesPct = s.cycEntryChange.value() / base * 100.0;
    b.tableMissPct = s.cycTableMiss.value() / base * 100.0;
    b.accessLatencyPct = s.cycAccessLatency.value() / base * 100.0;
    b.totalPct = (static_cast<double>(sys.totalCycles()) - base) / base *
                 100.0;
    // The shootdown row absorbs both the direct invalidation cycles
    // and the induced TLB refills — computed as the residual, exactly
    // the "subsequent TLB misses ... also taken into account" of the
    // paper's methodology (§V).
    b.tlbInvalidationPct = b.totalPct - b.permissionChangePct -
                           b.entryChangesPct - b.tableMissPct -
                           b.accessLatencyPct;
    // Clamp tiny negative rounding artefacts.
    if (b.tlbInvalidationPct < 0 && b.tlbInvalidationPct > -0.05)
        b.tlbInvalidationPct = 0;
    return b;
}

/** At most this many trailing ring events are embedded per scheme. */
constexpr std::size_t kMaxEmbeddedEvents = 32;

/** Serialize the tail of @p sys's event ring as a JSON array. */
std::string
eventsToJson(const core::System &sys)
{
    // The forensics id/req fields are emitted only when the layer is
    // on, so reports from forensics-off runs stay byte-identical to
    // their pre-blame form.
    const bool forensics = sys.forensicsEnabled();
    const std::vector<trace::Event> events = sys.events().snapshot();
    const std::size_t skip = events.size() > kMaxEmbeddedEvents
                                 ? events.size() - kMaxEmbeddedEvents
                                 : 0;
    std::string out = "[";
    for (std::size_t i = skip; i < events.size(); ++i) {
        const trace::Event &ev = events[i];
        if (i != skip)
            out += ",";
        out += "{\"kind\":\"";
        out += trace::eventKindName(ev.kind);
        out += "\",\"cycle\":" + std::to_string(ev.cycle);
        out += ",\"tid\":" + std::to_string(ev.tid);
        out += ",\"arg\":" + std::to_string(ev.arg);
        out += ",\"value\":" + std::to_string(ev.value);
        if (forensics) {
            out += ",\"id\":" + std::to_string(ev.id);
            out += ",\"req\":" + std::to_string(ev.req);
        }
        out += "}";
    }
    out += "]";
    return out;
}

/** Reduce @p digest into a row-level blame summary at @p p99. */
ServerBlame
summarizeBlame(const stats::SlowRequestDigest &digest, double p99)
{
    ServerBlame b;
    b.present = true;
    b.k = digest.k();
    b.entries = digest.entries().size();
    std::map<std::uint64_t, std::uint64_t> by_domain;
    std::uint64_t lat_sum = 0;
    std::uint64_t queue_sum = 0;
    for (const stats::SlowRequestEntry &e : digest.entries()) {
        if (static_cast<double>(e.latency) < p99)
            continue;
        ++b.cohort;
        lat_sum += e.latency;
        queue_sum += e.queue;
        ++by_domain[e.domain];
        b.blamedEvents += e.events.size() + e.eventsDropped;
        for (const stats::SlowBlamedEvent &ev : e.events)
            ++b.blamedByKind[ev.kind];
    }
    b.cohortQueueShare =
        lat_sum == 0 ? 0.0
                     : static_cast<double>(queue_sum) /
                           static_cast<double>(lat_sum);
    for (const auto &[domain, count] : by_domain) {
        if (count > b.topDomainEntries) {
            b.topDomain = domain;
            b.topDomainEntries = count;
        }
    }
    return b;
}

/**
 * Capture the per-scheme observability payloads (stats tree + event
 * ring) into @p stats_json / @p events_json. Must run while the
 * point's Systems are still alive, i.e. during row reduction.
 */
void
captureObservability(const PointRun &run,
                     std::map<SchemeKind, std::string> &stats_json,
                     std::map<SchemeKind, std::string> &events_json,
                     std::map<SchemeKind, std::string> &hot_json)
{
    for (SchemeKind k : run.kinds) {
        const core::System &sys = systemOf(run, k);
        stats_json[k] = stats::toJsonString(sys);
        events_json[k] = eventsToJson(sys);
        hot_json[k] = hotDomainsJson(sys.scheme().domainProfile());
    }
}

/** The full scheme list of a micro point: baseline + lowerbound + extras. */
std::vector<SchemeKind>
microKinds(const std::vector<SchemeKind> &schemes)
{
    std::vector<SchemeKind> all{SchemeKind::NoProtection,
                                SchemeKind::Lowerbound};
    for (SchemeKind k : schemes) {
        if (k != SchemeKind::NoProtection && k != SchemeKind::Lowerbound)
            all.push_back(k);
    }
    return all;
}

/** The fixed Table V scheme set of a WHISPER point. */
std::vector<SchemeKind>
whisperKinds()
{
    return {SchemeKind::NoProtection, SchemeKind::Mpk,
            SchemeKind::MpkVirt, SchemeKind::DomainVirt};
}

/**
 * Poll-and-report loop: counts ready futures every ~200 ms and prints
 * one overwriting stderr line with done/total, elapsed and a linear
 * ETA. `run->replays` is only read for runs whose capture already
 * completed — before that the vector is still being populated by the
 * capture task.
 */
void
awaitWithProgress(std::vector<std::future<void>> &captures,
                  std::vector<std::unique_ptr<PointRun>> &runs)
{
    using clock = std::chrono::steady_clock;
    const auto start = clock::now();
    std::size_t total = 0;
    for (const auto &run : runs)
        total += run->kinds.size();

    auto last_print = start;
    bool printed = false;
    for (;;) {
        std::size_t captures_done = 0;
        std::size_t replays_done = 0;
        std::size_t replays_known = 0;
        for (std::size_t i = 0; i < captures.size(); ++i) {
            if (captures[i].wait_for(std::chrono::seconds(0)) !=
                std::future_status::ready)
                continue;
            ++captures_done;
            for (auto &f : runs[i]->replays) {
                ++replays_known;
                if (f.wait_for(std::chrono::seconds(0)) ==
                    std::future_status::ready)
                    ++replays_done;
            }
        }
        const bool done = captures_done == captures.size() &&
                          replays_done == replays_known;
        const auto now = clock::now();
        if (done || now - last_print > std::chrono::milliseconds(200)) {
            last_print = now;
            const double elapsed =
                std::chrono::duration<double>(now - start).count();
            const double eta =
                replays_done == 0
                    ? 0.0
                    : elapsed *
                          static_cast<double>(total - replays_done) /
                          static_cast<double>(replays_done);
            std::fprintf(stderr,
                         "\r[exp] replays %zu/%zu  elapsed %.1fs"
                         "  eta %.1fs ",
                         replays_done, total, elapsed, eta);
            std::fflush(stderr);
            printed = true;
        }
        if (done)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (printed)
        std::fprintf(stderr, "\n");
}

/**
 * Wait for every capture, then every replay, then rethrow the first
 * stored exception (captures before replays). Waiting on everything
 * before rethrowing keeps no task alive past the runs it references.
 */
void
awaitAll(std::vector<std::future<void>> &captures,
         std::vector<std::unique_ptr<PointRun>> &runs, bool progress)
{
    if (progress)
        awaitWithProgress(captures, runs);
    for (auto &f : captures)
        f.wait();
    for (auto &run : runs) {
        for (auto &f : run->replays)
            f.wait();
    }
    for (auto &f : captures)
        f.get();
    for (auto &run : runs) {
        for (auto &f : run->replays)
            f.get();
    }
}

MicroPoint
reduceMicro(const MicroPointSpec &spec, const PointRun &run)
{
    MicroPoint point;
    point.benchmark = spec.benchmark;
    point.numPmos = spec.params.numPmos;
    point.cores = spec.config.topology.numCores;

    const auto &baseline = systemOf(run, SchemeKind::NoProtection);
    const double seconds = baseline.seconds();
    point.switchesPerSec =
        seconds == 0
            ? 0
            : static_cast<double>(run.counter.permissionSwitches()) /
                  seconds;
    point.lowerboundOverheadPct =
        overheadOver(run, SchemeKind::Lowerbound,
                     SchemeKind::NoProtection) * 100.0;

    for (SchemeKind k : run.kinds) {
        point.totalCycles[k] = systemOf(run, k).totalCycles();
        if (k == SchemeKind::NoProtection || k == SchemeKind::Lowerbound)
            continue;
        const auto &sys = systemOf(run, k);
        point.overheadPct[k] =
            overheadOver(run, k, SchemeKind::Lowerbound) * 100.0;
        point.breakdown[k] = computeBreakdown(sys, baseline);
        point.keyRemaps[k] = sys.scheme().keyRemaps.value();
        const auto *bus = sys.shootdownBus();
        point.ipisResponded[k] = bus ? bus->ipisResponded.value() : 0;
    }
    captureObservability(run, point.statsJson, point.eventsJson,
                         point.hotDomainsJson);
    return point;
}

WhisperRow
reduceWhisper(const WhisperPointSpec &spec, const PointRun &run)
{
    WhisperRow row;
    row.benchmark = spec.benchmark;
    const auto &baseline = systemOf(run, SchemeKind::NoProtection);
    const double seconds = baseline.seconds();
    row.switchesPerSec =
        seconds == 0
            ? 0
            : static_cast<double>(run.counter.permissionSwitches()) /
                  seconds;
    row.overheadMpkPct =
        overheadOver(run, SchemeKind::Mpk,
                     SchemeKind::NoProtection) * 100.0;
    row.overheadMpkVirtPct =
        overheadOver(run, SchemeKind::MpkVirt,
                     SchemeKind::NoProtection) * 100.0;
    row.overheadDomainVirtPct =
        overheadOver(run, SchemeKind::DomainVirt,
                     SchemeKind::NoProtection) * 100.0;
    for (SchemeKind k : run.kinds)
        row.totalCycles[k] = systemOf(run, k).totalCycles();
    captureObservability(run, row.statsJson, row.eventsJson,
                         row.hotDomainsJson);
    return row;
}

/** Quantile summary of one live latency/queue histogram pair. */
void
summarizeLatency(const stats::Histogram *lat, const stats::Histogram *q,
                 std::uint64_t &samples, double &mean, double &p50,
                 double &p99, double &p999, double &queue_p50,
                 double &queue_p99)
{
    if (lat) {
        samples = lat->samples();
        mean = lat->mean();
        p50 = lat->quantile(0.50);
        p99 = lat->quantile(0.99);
        p999 = lat->quantile(0.999);
    }
    if (q) {
        queue_p50 = q->quantile(0.50);
        queue_p99 = q->quantile(0.99);
    }
}

ServerRow
reduceServer(const ServerPointSpec &spec, const PointRun &run)
{
    ServerRow row;
    row.numTenants = spec.params.numTenants;
    row.cores = std::max(1u, spec.config.topology.numCores);
    row.requests = spec.params.numRequests;
    row.meanInterArrivalCycles = spec.params.meanInterArrivalCycles;
    for (SchemeKind k : run.kinds) {
        const core::System &sys = systemOf(run, k);
        row.totalCycles[k] = sys.totalCycles();
        ServerLatency lat;
        summarizeLatency(sys.opLatHist(), sys.opQueueHist(), lat.samples,
                         lat.mean, lat.p50, lat.p99, lat.p999,
                         lat.queueP50, lat.queueP99);
        for (unsigned c = 0; c < workloads::ServerWorkload::kNumTenantClasses;
             ++c) {
            ServerClassLatency cls;
            cls.name = workloads::ServerWorkload::tenantClassName(c);
            double unused_mean = 0;
            summarizeLatency(sys.opLatClassHist(c), sys.opQueueClassHist(c),
                             cls.samples, unused_mean, cls.p50, cls.p99,
                             cls.p999, cls.queueP50, cls.queueP99);
            lat.classes.push_back(std::move(cls));
        }
        if (sys.forensicsEnabled())
            row.blame[k] = summarizeBlame(*sys.slowDigest(), lat.p99);
        row.latency[k] = std::move(lat);
    }
    captureObservability(run, row.statsJson, row.eventsJson,
                         row.hotDomainsJson);
    return row;
}

/**
 * Append every System of @p run to @p exporter (when one is set), one
 * track per scheme named "<point>/<scheme>". Runs on the coordinating
 * thread during reduction, preserving spec order.
 */
void
exportTracks(trace::PerfettoExporter *exporter, const PointRun &run,
             const std::string &point_label)
{
    if (!exporter)
        return;
    for (std::size_t i = 0; i < run.kinds.size(); ++i) {
        const std::string label =
            point_label.empty()
                ? std::string(arch::schemeName(run.kinds[i]))
                : point_label + "/" + arch::schemeName(run.kinds[i]);
        appendSystemTrack(*exporter, *run.systems[i], label);
    }
}

} // namespace

std::vector<MicroPoint>
Executor::runMicro(const std::vector<MicroPointSpec> &specs)
{
    std::vector<std::unique_ptr<PointRun>> runs;
    std::vector<std::future<void>> captures;
    runs.reserve(specs.size());
    captures.reserve(specs.size());
    for (const MicroPointSpec &spec : specs) {
        runs.push_back(std::make_unique<PointRun>());
        PointRun *run = runs.back().get();
        run->kinds = microKinds(spec.schemes);
        captures.push_back(pool_.submit([this, run, spec] {
            trace::VectorSink buffer;
            workloads::TraceCtx ctx(buffer, spec.params.seed);
            auto workload =
                workloads::makeMicro(spec.benchmark, spec.params);
            workload->run(ctx);
            run->buffer = trace::TraceBuffer::fromRecords(buffer.take());
            launchReplays(pool_, *run, spec.config);
        }));
    }
    awaitAll(captures, runs, progress_);

    std::vector<MicroPoint> rows;
    rows.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        rows.push_back(reduceMicro(specs[i], *runs[i]));
        exportTracks(perfetto_, *runs[i],
                     specs[i].benchmark + "/pmos=" +
                         std::to_string(specs[i].params.numPmos));
    }
    return rows;
}

std::vector<WhisperRow>
Executor::runWhisper(const std::vector<WhisperPointSpec> &specs)
{
    std::vector<std::unique_ptr<PointRun>> runs;
    std::vector<std::future<void>> captures;
    runs.reserve(specs.size());
    captures.reserve(specs.size());
    for (const WhisperPointSpec &spec : specs) {
        runs.push_back(std::make_unique<PointRun>());
        PointRun *run = runs.back().get();
        run->kinds = whisperKinds();
        captures.push_back(pool_.submit([this, run, spec] {
            trace::VectorSink buffer;
            auto workload =
                workloads::makeWhisper(spec.benchmark, spec.params);
            pmo::Namespace ns; // In-memory: pools are ephemeral here.
            workload->run(ns, buffer);
            run->buffer = trace::TraceBuffer::fromRecords(buffer.take());
            launchReplays(pool_, *run, spec.config);
        }));
    }
    awaitAll(captures, runs, progress_);

    std::vector<WhisperRow> rows;
    rows.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        rows.push_back(reduceWhisper(specs[i], *runs[i]));
        exportTracks(perfetto_, *runs[i], specs[i].benchmark);
    }
    return rows;
}

std::vector<ServerRow>
Executor::runServer(const std::vector<ServerPointSpec> &specs)
{
    std::vector<std::unique_ptr<PointRun>> runs;
    std::vector<std::future<void>> captures;
    runs.reserve(specs.size());
    captures.reserve(specs.size());
    for (const ServerPointSpec &spec : specs) {
        runs.push_back(std::make_unique<PointRun>());
        PointRun *run = runs.back().get();
        run->kinds = microKinds(spec.schemes);
        // Replays must grow the request-latency histograms the
        // reduction reads, whatever the caller's config says.
        core::SimConfig config = spec.config;
        config.opClasses = workloads::ServerWorkload::kNumTenantClasses;
        captures.push_back(pool_.submit([this, run, spec, config] {
            trace::VectorSink buffer;
            workloads::TraceCtx ctx(buffer, spec.params.seed);
            workloads::ServerWorkload workload(spec.params);
            workload.run(ctx);
            run->buffer = trace::TraceBuffer::fromRecords(buffer.take());
            launchReplays(pool_, *run, config);
        }));
    }
    awaitAll(captures, runs, progress_);

    std::vector<ServerRow> rows;
    rows.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        rows.push_back(reduceServer(specs[i], *runs[i]));
        exportTracks(perfetto_, *runs[i],
                     rows.back().benchmark + "/tenants=" +
                         std::to_string(specs[i].params.numTenants));
    }
    return rows;
}

std::vector<RawPointResult>
Executor::runRaw(const std::vector<RawPointSpec> &specs)
{
    std::vector<std::unique_ptr<PointRun>> runs;
    std::vector<std::future<void>> captures;
    runs.reserve(specs.size());
    captures.reserve(specs.size());
    for (const RawPointSpec &spec : specs) {
        panic_if(!spec.trace, "RawPointSpec without a trace buffer");
        runs.push_back(std::make_unique<PointRun>());
        PointRun *run = runs.back().get();
        run->kinds = spec.schemes;
        run->buffer = spec.trace;
        // No workload to capture — go straight to the replays.
        captures.push_back(pool_.submit([this, run, spec] {
            launchReplays(pool_, *run, spec.config);
        }));
    }
    awaitAll(captures, runs, progress_);

    std::vector<RawPointResult> rows;
    rows.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        RawPointResult res;
        for (SchemeKind k : runs[i]->kinds) {
            const core::System &sys = systemOf(*runs[i], k);
            res.totalCycles[k] = sys.totalCycles();
            res.deniedAccesses[k] = sys.deniedAccesses.value();
            res.hotDomains[k] =
                sys.scheme().domainProfile().topN(kHotDomainsTopN);
        }
        captureObservability(*runs[i], res.statsJson, res.eventsJson,
                             res.hotDomainsJson);
        exportTracks(perfetto_, *runs[i],
                     specs.size() == 1 ? std::string()
                                       : "p" + std::to_string(i));
        rows.push_back(std::move(res));
    }
    return rows;
}

MicroPoint
Executor::runMicro(const MicroPointSpec &spec)
{
    return runMicro(std::vector<MicroPointSpec>{spec}).front();
}

WhisperRow
Executor::runWhisper(const WhisperPointSpec &spec)
{
    return runWhisper(std::vector<WhisperPointSpec>{spec}).front();
}

ServerRow
Executor::runServer(const ServerPointSpec &spec)
{
    return runServer(std::vector<ServerPointSpec>{spec}).front();
}

RawPointResult
Executor::runRaw(const RawPointSpec &spec)
{
    return runRaw(std::vector<RawPointSpec>{spec}).front();
}

} // namespace pmodv::exp
