#include "exp/suite.hh"

#include <chrono>
#include <fstream>
#include <ostream>

namespace pmodv::exp
{

using arch::SchemeKind;

std::vector<MicroPointSpec>
SweepSpec::points() const
{
    const std::vector<std::string> &names =
        benchmarks.empty() ? workloads::microNames() : benchmarks;
    // An empty core axis means "whatever the config says" — one grid.
    const std::vector<unsigned> cores =
        coreCounts.empty() ? std::vector<unsigned>{0} : coreCounts;
    std::vector<MicroPointSpec> out;
    out.reserve(names.size() * pmoCounts.size() * cores.size());
    for (const std::string &name : names) {
        for (unsigned pmos : pmoCounts) {
            for (unsigned k : cores) {
                MicroPointSpec spec;
                spec.benchmark = name;
                spec.params = base;
                spec.params.numPmos = pmos;
                spec.config = config;
                if (k != 0) {
                    spec.config.topology.numCores = k;
                    spec.params.numThreads = k;
                }
                spec.schemes = schemes;
                out.push_back(std::move(spec));
            }
        }
    }
    return out;
}

std::vector<ServerPointSpec>
ServerSweepSpec::points() const
{
    const std::vector<unsigned> cores =
        coreCounts.empty() ? std::vector<unsigned>{0} : coreCounts;
    std::vector<ServerPointSpec> out;
    out.reserve(tenantCounts.size() * cores.size());
    for (unsigned tenants : tenantCounts) {
        for (unsigned k : cores) {
            ServerPointSpec spec;
            spec.params = base;
            spec.params.numTenants = tenants;
            spec.config = config;
            if (k != 0) {
                spec.config.topology.numCores = k;
                spec.params.numThreads = k;
            }
            spec.schemes = schemes;
            out.push_back(std::move(spec));
        }
    }
    return out;
}

std::size_t
ExperimentSuite::add(MicroPointSpec spec)
{
    micro_.push_back(std::move(spec));
    return micro_.size() - 1;
}

std::size_t
ExperimentSuite::add(WhisperPointSpec spec)
{
    whisper_.push_back(std::move(spec));
    return whisper_.size() - 1;
}

std::size_t
ExperimentSuite::add(ServerPointSpec spec)
{
    server_.push_back(std::move(spec));
    return server_.size() - 1;
}

std::size_t
ExperimentSuite::add(const SweepSpec &sweep)
{
    const std::size_t first = micro_.size();
    for (MicroPointSpec &spec : sweep.points())
        micro_.push_back(std::move(spec));
    return first;
}

std::size_t
ExperimentSuite::add(const ServerSweepSpec &sweep)
{
    const std::size_t first = server_.size();
    for (ServerPointSpec &spec : sweep.points())
        server_.push_back(std::move(spec));
    return first;
}

void
ExperimentSuite::run(common::ThreadPool &pool)
{
    const auto start = std::chrono::steady_clock::now();
    Executor executor(pool);
    executor.setProgress(progress_);
    executor.setPerfettoExporter(perfetto_);
    microRows_ = executor.runMicro(micro_);
    whisperRows_ = executor.runWhisper(whisper_);
    serverRows_ = executor.runServer(server_);
    wallSeconds_ = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    jobs_ = pool.size();
}

namespace
{

/** Minimal JSON string escaping (names here are plain ASCII). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

void
writeSchemeDoubles(std::ostream &os,
                   const std::map<SchemeKind, double> &m)
{
    os << "{";
    bool first = true;
    for (const auto &[kind, value] : m) {
        os << (first ? "" : ", ") << '"' << arch::schemeName(kind)
           << "\": " << value;
        first = false;
    }
    os << "}";
}

void
writeSchemeCycles(std::ostream &os,
                  const std::map<SchemeKind, Cycles> &m)
{
    os << "{";
    bool first = true;
    for (const auto &[kind, value] : m) {
        os << (first ? "" : ", ") << '"' << arch::schemeName(kind)
           << "\": " << value;
        first = false;
    }
    os << "}";
}

/**
 * Emit a map of scheme -> pre-serialized JSON (the stats trees and
 * event arrays captured by the executor) as a JSON object. The values
 * are already JSON, so they are spliced in verbatim.
 */
void
writeSchemeJson(std::ostream &os,
                const std::map<SchemeKind, std::string> &m)
{
    os << "{";
    bool first = true;
    for (const auto &[kind, json] : m) {
        os << (first ? "" : ", ") << '"' << arch::schemeName(kind)
           << "\": " << json;
        first = false;
    }
    os << "}";
}

void
writeMicroRow(std::ostream &os, const MicroPoint &pt)
{
    os << "    {\"benchmark\": \"" << jsonEscape(pt.benchmark)
       << "\", \"pmos\": " << pt.numPmos
       << ", \"cores\": " << pt.cores
       << ", \"switches_per_sec\": " << pt.switchesPerSec
       << ", \"lowerbound_overhead_pct\": " << pt.lowerboundOverheadPct
       << ",\n     \"overhead_pct\": ";
    writeSchemeDoubles(os, pt.overheadPct);
    os << ",\n     \"key_remaps\": ";
    writeSchemeDoubles(os, pt.keyRemaps);
    os << ",\n     \"ipis_responded\": ";
    writeSchemeDoubles(os, pt.ipisResponded);
    os << ",\n     \"total_cycles\": ";
    writeSchemeCycles(os, pt.totalCycles);
    os << ",\n     \"breakdown\": {";
    bool first = true;
    for (const auto &[kind, b] : pt.breakdown) {
        os << (first ? "" : ", ") << '"' << arch::schemeName(kind)
           << "\": {\"permission_change_pct\": " << b.permissionChangePct
           << ", \"entry_changes_pct\": " << b.entryChangesPct
           << ", \"table_miss_pct\": " << b.tableMissPct
           << ", \"tlb_invalidation_pct\": " << b.tlbInvalidationPct
           << ", \"access_latency_pct\": " << b.accessLatencyPct
           << ", \"total_pct\": " << b.totalPct << "}";
        first = false;
    }
    os << "}";
    os << ",\n     \"stats\": ";
    writeSchemeJson(os, pt.statsJson);
    os << ",\n     \"events\": ";
    writeSchemeJson(os, pt.eventsJson);
    os << ",\n     \"hot_domains\": ";
    writeSchemeJson(os, pt.hotDomainsJson);
    os << "}";
}

void
writeWhisperRow(std::ostream &os, const WhisperRow &row)
{
    os << "    {\"benchmark\": \"" << jsonEscape(row.benchmark)
       << "\", \"switches_per_sec\": " << row.switchesPerSec
       << ", \"overhead_mpk_pct\": " << row.overheadMpkPct
       << ", \"overhead_mpk_virt_pct\": " << row.overheadMpkVirtPct
       << ", \"overhead_domain_virt_pct\": "
       << row.overheadDomainVirtPct << ",\n     \"total_cycles\": ";
    writeSchemeCycles(os, row.totalCycles);
    os << ",\n     \"stats\": ";
    writeSchemeJson(os, row.statsJson);
    os << ",\n     \"events\": ";
    writeSchemeJson(os, row.eventsJson);
    os << ",\n     \"hot_domains\": ";
    writeSchemeJson(os, row.hotDomainsJson);
    os << "}";
}

void
writeServerRow(std::ostream &os, const ServerRow &row)
{
    os << "    {\"benchmark\": \"" << jsonEscape(row.benchmark)
       << "\", \"tenants\": " << row.numTenants
       << ", \"cores\": " << row.cores
       << ", \"requests\": " << row.requests
       << ", \"mean_interarrival_cycles\": "
       << row.meanInterArrivalCycles << ",\n     \"total_cycles\": ";
    writeSchemeCycles(os, row.totalCycles);
    os << ",\n     \"latency\": {";
    bool first = true;
    for (const auto &[kind, lat] : row.latency) {
        os << (first ? "" : ", ") << '"' << arch::schemeName(kind)
           << "\": {\"samples\": " << lat.samples
           << ", \"mean\": " << lat.mean << ", \"p50\": " << lat.p50
           << ", \"p99\": " << lat.p99 << ", \"p999\": " << lat.p999
           << ", \"queue_p50\": " << lat.queueP50
           << ", \"queue_p99\": " << lat.queueP99
           << ", \"classes\": [";
        for (std::size_t c = 0; c < lat.classes.size(); ++c) {
            const ServerClassLatency &cls = lat.classes[c];
            os << (c == 0 ? "" : ", ") << "{\"class\": \""
               << jsonEscape(cls.name)
               << "\", \"samples\": " << cls.samples
               << ", \"p50\": " << cls.p50 << ", \"p99\": " << cls.p99
               << ", \"p999\": " << cls.p999
               << ", \"queue_p50\": " << cls.queueP50
               << ", \"queue_p99\": " << cls.queueP99 << "}";
        }
        os << "]}";
        first = false;
    }
    os << "}";
    if (!row.blame.empty()) {
        // Emitted only when the point ran with forensics on, so rows
        // from forensics-off runs keep their pre-blame byte layout.
        os << ",\n     \"blame\": {";
        first = true;
        for (const auto &[kind, b] : row.blame) {
            os << (first ? "" : ", ") << '"' << arch::schemeName(kind)
               << "\": {\"k\": " << b.k << ", \"entries\": " << b.entries
               << ", \"cohort\": " << b.cohort
               << ", \"cohort_queue_share\": " << b.cohortQueueShare
               << ", \"blamed_events\": " << b.blamedEvents
               << ", \"blamed_by_kind\": {";
            bool first_kind = true;
            for (const auto &[name, count] : b.blamedByKind) {
                os << (first_kind ? "" : ", ") << '"' << jsonEscape(name)
                   << "\": " << count;
                first_kind = false;
            }
            os << "}, \"top_domain\": " << b.topDomain
               << ", \"top_domain_entries\": " << b.topDomainEntries
               << "}";
            first = false;
        }
        os << "}";
    }
    os << ",\n     \"stats\": ";
    writeSchemeJson(os, row.statsJson);
    os << ",\n     \"events\": ";
    writeSchemeJson(os, row.eventsJson);
    os << ",\n     \"hot_domains\": ";
    writeSchemeJson(os, row.hotDomainsJson);
    os << "}";
}

} // namespace

void
ExperimentSuite::writeJson(std::ostream &os) const
{
    const auto flags = os.flags();
    const auto precision = os.precision();
    os.precision(17); // Round-trip doubles exactly.

    os << "{\n  \"suite\": \"" << jsonEscape(name_) << "\",\n"
       << "  \"jobs\": " << jobs_ << ",\n"
       << "  \"wall_seconds\": " << wallSeconds_ << ",\n"
       << "  \"micro\": [\n";
    for (std::size_t i = 0; i < microRows_.size(); ++i) {
        writeMicroRow(os, microRows_[i]);
        os << (i + 1 < microRows_.size() ? ",\n" : "\n");
    }
    os << "  ],\n  \"whisper\": [\n";
    for (std::size_t i = 0; i < whisperRows_.size(); ++i) {
        writeWhisperRow(os, whisperRows_[i]);
        os << (i + 1 < whisperRows_.size() ? ",\n" : "\n");
    }
    os << "  ],\n  \"server\": [\n";
    for (std::size_t i = 0; i < serverRows_.size(); ++i) {
        writeServerRow(os, serverRows_[i]);
        os << (i + 1 < serverRows_.size() ? ",\n" : "\n");
    }
    os << "  ]\n}\n";

    os.precision(precision);
    os.flags(flags);
}

bool
ExperimentSuite::writeJsonFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeJson(os);
    return static_cast<bool>(os);
}

} // namespace pmodv::exp
