/**
 * @file
 * The area/memory overhead model behind the paper's Table VIII:
 * hardware buffer sizes (DTTLB/PTLB), new registers, TLB entry
 * extension, and per-process software table footprints (DTT, DRT,
 * PT) for a given domain/thread scale.
 */

#ifndef PMODV_EXP_AREA_HH
#define PMODV_EXP_AREA_HH

#include <cstdint>
#include <ostream>

#include "arch/params.hh"

namespace pmodv::exp
{

/** Inputs to the area model. */
struct AreaInputs
{
    arch::ProtParams prot{};
    unsigned numDomains = 1024;
    unsigned numThreads = 1024;
    unsigned tlbEntries = 64 + 1536;
};

/** Table VIII numbers for one design. */
struct AreaSummary
{
    unsigned newRegistersPerCore = 0;
    std::uint64_t bufferBits = 0;   ///< DTTLB / PTLB storage.
    std::uint64_t tlbExtensionBits = 0; ///< Extra bits across the TLB.
    std::uint64_t tableBytesPerProcess = 0; ///< DTT or DRT+PT memory.
};

/** Bits in one DTTLB entry (36b VA tag + 32b domain + key + flags). */
std::uint64_t dttlbEntryBits();

/** Bits in one PTLB entry (10b domain + 2b perm). */
std::uint64_t ptlbEntryBits();

/** Area summary of the hardware MPK-virtualization design. */
AreaSummary mpkVirtArea(const AreaInputs &in);

/** Area summary of the hardware domain-virtualization design. */
AreaSummary domainVirtArea(const AreaInputs &in);

/** Print both summaries in the layout of Table VIII. */
void printAreaTable(std::ostream &os, const AreaInputs &in);

} // namespace pmodv::exp

#endif // PMODV_EXP_AREA_HH
