#include "exp/trace_export.hh"

#include <iomanip>
#include <map>
#include <ostream>

namespace pmodv::exp
{

trace::PerfettoExporter
makeExporter(const core::SimConfig &config)
{
    // The trace-event timebase is microseconds: freqGhz * 1000
    // simulated cycles each.
    return trace::PerfettoExporter(config.freqGhz * 1000.0);
}

void
appendSystemTrack(trace::PerfettoExporter &exporter,
                  const core::System &sys, const std::string &label)
{
    const int track = exporter.addTrack(label);

    // The whole replay as one background span.
    exporter.span(track, "replay", 0, sys.totalCycles(), 0,
                  {{"cycles", static_cast<double>(sys.totalCycles())}});

    // Shootdown IPIs land on per-responding-core subtracks so a
    // multi-core replay shows which cores keep paying for evictions.
    std::map<std::uint32_t, int> ipiTracks;
    const auto ipiTrack = [&](std::uint32_t core) {
        auto it = ipiTracks.find(core);
        if (it == ipiTracks.end()) {
            it = ipiTracks
                     .emplace(core,
                              exporter.addTrack(
                                  label + "/core" +
                                  std::to_string(core) + "/ipi"))
                     .first;
        }
        return it->second;
    };

    for (const trace::Event &ev : sys.events().snapshot()) {
        const double arg = static_cast<double>(ev.arg);
        const double value = static_cast<double>(ev.value);
        switch (ev.kind) {
          case trace::EventKind::TxnCommit:
            // arg = the op's primary domain, value = its duration.
            exporter.span(track,
                          "txn d" + std::to_string(ev.arg),
                          ev.cycle - ev.value, ev.value, ev.tid,
                          {{"domain", arg}, {"cycles", value}});
            break;
          case trace::EventKind::KeyEviction:
            exporter.instant(track, "key_eviction", ev.cycle, ev.tid,
                             {{"domain", arg}, {"key", value}});
            break;
          case trace::EventKind::Shootdown:
            exporter.instant(track, "shootdown", ev.cycle, ev.tid,
                             {{"domain", arg}, {"pages", value}});
            break;
          case trace::EventKind::PtlbRefill:
          case trace::EventKind::DttlbRefill:
            exporter.instant(track, trace::eventKindName(ev.kind),
                             ev.cycle, ev.tid,
                             {{"domain", arg}, {"cycles", value}});
            break;
          case trace::EventKind::Ipi:
            // arg = responding core, value = stale pages it flushed.
            exporter.instant(ipiTrack(ev.arg), "ipi", ev.cycle, ev.tid,
                             {{"core", arg}, {"pages", value}});
            break;
        }
    }

    // With tail forensics on, draw a flow arrow from each blamed
    // event instant into the delayed request's txn span. The arrow id
    // is the ring event id — unique per arrow because an event lands
    // in at most one request window.
    if (sys.forensicsEnabled()) {
        for (const stats::SlowRequestEntry &entry :
             sys.slowDigest()->entries()) {
            for (const stats::SlowBlamedEvent &ev : entry.events) {
                const std::string name =
                    "blame:" + ev.kind + "->req" +
                    std::to_string(entry.id);
                exporter.flowStart(track, name, ev.cycle,
                                   static_cast<ThreadId>(ev.tid),
                                   ev.id);
                exporter.flowEnd(track, name, entry.commit,
                                 static_cast<ThreadId>(entry.tid),
                                 ev.id);
            }
        }
    }

    // One counter series per timeline track, sampled at epoch ends.
    const stats::TimeSeries &tl = sys.timeline;
    if (tl.enabled()) {
        for (std::size_t t = 0; t < tl.numTracks(); ++t) {
            for (std::size_t e = 0; e < tl.numEpochs(); ++e) {
                exporter.counter(track, tl.trackLabel(t),
                                 (e + 1) * tl.epochCycles(),
                                 tl.sample(t, e));
            }
        }
    }
}

std::string
hotDomainsJson(const arch::DomainProfile &profile, std::size_t n)
{
    std::string out = "[";
    bool first = true;
    for (const arch::HotDomain &row : profile.topN(n)) {
        if (!first)
            out += ",";
        first = false;
        const arch::DomainCounters &c = row.counters;
        out += "{\"domain\":" + std::to_string(row.domain) +
               ",\"accesses\":" + std::to_string(c.accesses) +
               ",\"fill_misses\":" + std::to_string(c.fillMisses) +
               ",\"evictions\":" + std::to_string(c.evictions) +
               ",\"shootdown_pages\":" +
               std::to_string(c.shootdownPages) +
               ",\"setperms\":" + std::to_string(c.setperms) + "}";
    }
    out += "]";
    return out;
}

void
printHotDomains(std::ostream &os, const arch::DomainProfile &profile,
                std::size_t n)
{
    printHotDomains(os, profile.topN(n));
}

void
printHotDomains(std::ostream &os,
                const std::vector<arch::HotDomain> &rows)
{
    if (rows.empty()) {
        os << "  (no domain activity recorded)\n";
        return;
    }
    os << "  " << std::setw(8) << "domain" << std::setw(12) << "accesses"
       << std::setw(12) << "fills" << std::setw(12) << "evictions"
       << std::setw(12) << "shot_pages" << std::setw(12) << "setperms"
       << "\n";
    for (const arch::HotDomain &row : rows) {
        const arch::DomainCounters &c = row.counters;
        os << "  " << std::setw(8) << row.domain << std::setw(12)
           << c.accesses << std::setw(12) << c.fillMisses
           << std::setw(12) << c.evictions << std::setw(12)
           << c.shootdownPages << std::setw(12) << c.setperms << "\n";
    }
}

} // namespace pmodv::exp
