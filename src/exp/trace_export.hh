/**
 * @file
 * Bridges from replayed Systems to the report formats that need more
 * than aggregate counters:
 *
 *  - appendSystemTrack() renders one System as a Perfetto track: a
 *    whole-replay span, one labelled span per committed workload
 *    operation (the event ring's TxnCommit events carry the op's
 *    primary domain and duration), instant events for key evictions,
 *    shootdowns and PTLB/DTTLB refills, and one counter series per
 *    timeline track when epoch sampling was enabled.
 *
 *  - hotDomainsJson()/printHotDomains() render a scheme's
 *    DomainProfile as the top-N "hot domains" table (JSON array for
 *    suite reports, aligned text for pmodv-trace).
 *
 * These live in exp (not trace) because they depend on core::System;
 * trace::PerfettoExporter itself stays pure format.
 */

#ifndef PMODV_EXP_TRACE_EXPORT_HH
#define PMODV_EXP_TRACE_EXPORT_HH

#include <cstddef>
#include <iosfwd>
#include <string>

#include "arch/domain_profile.hh"
#include "core/system.hh"
#include "trace/perfetto.hh"

namespace pmodv::exp
{

/** Rows reported by the hot-domain table (reports and suite JSON). */
inline constexpr std::size_t kHotDomainsTopN = 8;

/**
 * Append @p sys as one track named @p label to @p exporter. Reads the
 * event ring non-destructively; call after the replay finished.
 */
void appendSystemTrack(trace::PerfettoExporter &exporter,
                       const core::System &sys,
                       const std::string &label);

/** A PerfettoExporter timed for @p config's core clock. */
trace::PerfettoExporter makeExporter(const core::SimConfig &config);

/** @p profile's top-@p n domains as a JSON array of objects. */
std::string hotDomainsJson(const arch::DomainProfile &profile,
                           std::size_t n = kHotDomainsTopN);

/** Aligned text table of pre-ranked hot-domain rows (header
 *  included); prints a placeholder line when @p rows is empty. */
void printHotDomains(std::ostream &os,
                     const std::vector<arch::HotDomain> &rows);

/** As above, ranking @p profile's top-@p n domains first. */
void printHotDomains(std::ostream &os,
                     const arch::DomainProfile &profile,
                     std::size_t n = kHotDomainsTopN);

} // namespace pmodv::exp

#endif // PMODV_EXP_TRACE_EXPORT_HH
