/**
 * @file
 * The parallel experiment executor.
 *
 * An experiment *point* is one workload configuration replayed under
 * several protection schemes. The executor mirrors the paper's
 * Pin→Sniper flow but parallelizes both of its independent axes:
 *
 *  1. each point's workload trace is captured ONCE into an immutable
 *     shared trace::TraceBuffer (one capture task per point, points
 *     run concurrently), and
 *  2. each per-scheme System pipeline replays that buffer on its own
 *     worker thread via System::replayBatch (one replay task per
 *     (point, scheme)).
 *
 * Every System is constructed, fed and finished by exactly one task,
 * and rows are reduced on the coordinating thread in registration
 * order — so all reported numbers are bit-identical to the serial
 * MultiReplay path regardless of the worker count.
 */

#ifndef PMODV_EXP_EXECUTOR_HH
#define PMODV_EXP_EXECUTOR_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arch/domain_profile.hh"
#include "common/thread_pool.hh"
#include "core/replay.hh"
#include "trace/buffer.hh"
#include "workloads/micro/micro.hh"
#include "workloads/server/server.hh"
#include "workloads/whisper/whisper.hh"

namespace pmodv::trace
{
class PerfettoExporter;
} // namespace pmodv::trace

namespace pmodv::exp
{

// ---------------------------------------------------------------- rows

/** One WHISPER benchmark's Table V row. */
struct WhisperRow
{
    std::string benchmark;
    double switchesPerSec = 0;
    double overheadMpkPct = 0;
    double overheadMpkVirtPct = 0;
    double overheadDomainVirtPct = 0;
    /** Raw cycle counts per scheme (incl. the unprotected baseline). */
    std::map<arch::SchemeKind, Cycles> totalCycles;
    /** Full stats tree per scheme, serialized as compact JSON. */
    std::map<arch::SchemeKind, std::string> statsJson;
    /** Event-ring snapshot per scheme, as a JSON array. */
    std::map<arch::SchemeKind, std::string> eventsJson;
    /** Top-N hot-domain table per scheme, as a JSON array. */
    std::map<arch::SchemeKind, std::string> hotDomainsJson;
};

/** Tail-latency summary of one tenant class under one scheme. */
struct ServerClassLatency
{
    std::string name; ///< "hot" / "warm" / "cold".
    std::uint64_t samples = 0;
    double p50 = 0;
    double p99 = 0;
    double p999 = 0;
    double queueP50 = 0;
    double queueP99 = 0;
};

/** Request-latency summary of one scheme on a server point. */
struct ServerLatency
{
    std::uint64_t samples = 0;
    double mean = 0;
    double p50 = 0;
    double p99 = 0;
    double p999 = 0;
    /** Queueing delay (arrival to service start). */
    double queueP50 = 0;
    double queueP99 = 0;
    std::vector<ServerClassLatency> classes;
};

/**
 * Blame summary of one scheme's slow-request digest — computed only
 * when the point ran with tail forensics on (config.slowRequestK > 0).
 * The cohort is the retained digest entries whose latency reaches the
 * scheme's p99, so "why is the p99 bad" reads directly off it.
 */
struct ServerBlame
{
    bool present = false;
    std::uint64_t k = 0;       ///< Digest bound (slowRequestK).
    std::uint64_t entries = 0; ///< Retained digest entries.
    std::uint64_t cohort = 0;  ///< Entries with latency >= p99.
    /** sum(queue) / sum(latency) over the cohort (0 when empty). */
    double cohortQueueShare = 0;
    /** In-window blamed events over the cohort (dropped included). */
    std::uint64_t blamedEvents = 0;
    /** Cohort blamed-event counts by kind name (sorted by key). */
    std::map<std::string, std::uint64_t> blamedByKind;
    /** Domain appearing in the most cohort entries, and that count. */
    std::uint64_t topDomain = 0;
    std::uint64_t topDomainEntries = 0;
};

/** One (tenant-count, core-count) server sweep point's results. */
struct ServerRow
{
    std::string benchmark = "kv";
    unsigned numTenants = 0;
    unsigned cores = 1;
    std::uint64_t requests = 0;
    double meanInterArrivalCycles = 0;
    std::map<arch::SchemeKind, Cycles> totalCycles;
    std::map<arch::SchemeKind, ServerLatency> latency;
    /** Per-scheme blame summaries (present only with forensics on). */
    std::map<arch::SchemeKind, ServerBlame> blame;
    /** Full stats tree per scheme, serialized as compact JSON. */
    std::map<arch::SchemeKind, std::string> statsJson;
    /** Event-ring snapshot per scheme, as a JSON array. */
    std::map<arch::SchemeKind, std::string> eventsJson;
    /** Top-N hot-domain table per scheme, as a JSON array. */
    std::map<arch::SchemeKind, std::string> hotDomainsJson;
};

/** Table VII-style overhead breakdown (percent over lowerbound). */
struct Breakdown
{
    double permissionChangePct = 0;
    double entryChangesPct = 0;
    double tableMissPct = 0;     ///< DTT misses / PTLB misses row.
    double tlbInvalidationPct = 0; ///< Incl. induced TLB misses (MPK virt).
    double accessLatencyPct = 0; ///< Domain virt only.
    double totalPct = 0;
};

/** One (benchmark, pmo-count) sweep point. */
struct MicroPoint
{
    std::string benchmark;
    unsigned numPmos = 0;
    /** Simulated cores of the point's machine (config.topology). */
    unsigned cores = 1;
    double switchesPerSec = 0;
    double lowerboundOverheadPct = 0; ///< Over the unprotected baseline.
    /** Overhead over lowerbound, percent, per scheme. */
    std::map<arch::SchemeKind, double> overheadPct;
    /** Breakdown per proposed scheme. */
    std::map<arch::SchemeKind, Breakdown> breakdown;
    /** Eviction/shootdown counts per scheme (diagnostics). */
    std::map<arch::SchemeKind, double> keyRemaps;
    /** Remote cores charged by shootdown broadcasts (0 on 1 core). */
    std::map<arch::SchemeKind, double> ipisResponded;
    /** Raw cycle counts per scheme (incl. baseline and lowerbound). */
    std::map<arch::SchemeKind, Cycles> totalCycles;
    /** Full stats tree per scheme, serialized as compact JSON. */
    std::map<arch::SchemeKind, std::string> statsJson;
    /** Event-ring snapshot per scheme, as a JSON array. */
    std::map<arch::SchemeKind, std::string> eventsJson;
    /** Top-N hot-domain table per scheme, as a JSON array. */
    std::map<arch::SchemeKind, std::string> hotDomainsJson;
};

// --------------------------------------------------------------- specs

/**
 * One microbenchmark sweep point: @p benchmark at @p params under
 * @p schemes. The unprotected baseline and the lowerbound pipelines
 * are always replayed in addition to @p schemes.
 */
struct MicroPointSpec
{
    std::string benchmark;
    workloads::MicroParams params;
    core::SimConfig config;
    std::vector<arch::SchemeKind> schemes;
};

/**
 * One WHISPER benchmark run under the Table V scheme set
 * {none, mpk, mpk_virt, domain_virt}.
 */
struct WhisperPointSpec
{
    std::string benchmark;
    workloads::WhisperParams params;
    core::SimConfig config;
};

/**
 * One open-loop server sweep point: the KV server at @p params under
 * @p schemes (baseline and lowerbound are always added, like the
 * micro points). The executor forces config.opClasses to the server's
 * tenant-class count, so every replay grows the request-latency
 * histograms the reduction reads its quantiles from.
 */
struct ServerPointSpec
{
    workloads::ServerParams params;
    core::SimConfig config;
    std::vector<arch::SchemeKind> schemes;
};

/**
 * A pre-captured trace replayed under @p schemes verbatim (no
 * baseline/lowerbound is added). Lets ad-hoc experiments (ablations,
 * tools) share the parallel replay machinery.
 */
struct RawPointSpec
{
    /** The captured trace, shared by reference across all replays. */
    std::shared_ptr<const trace::TraceBuffer> trace;
    core::SimConfig config;
    std::vector<arch::SchemeKind> schemes;
};

/** Result of a RawPointSpec: cycle counts per scheme. */
struct RawPointResult
{
    std::map<arch::SchemeKind, Cycles> totalCycles;
    std::map<arch::SchemeKind, double> deniedAccesses;
    /** Full stats tree per scheme, serialized as compact JSON. */
    std::map<arch::SchemeKind, std::string> statsJson;
    /** Event-ring snapshot per scheme, as a JSON array. */
    std::map<arch::SchemeKind, std::string> eventsJson;
    /** Top-N hot-domain table per scheme, as a JSON array. */
    std::map<arch::SchemeKind, std::string> hotDomainsJson;
    /** The same table, typed (for tools printing text reports). */
    std::map<arch::SchemeKind, std::vector<arch::HotDomain>> hotDomains;
};

/** log2 of an overhead percentage, the paper's Figure 6 y-axis. */
double log2Pct(double pct);

// ------------------------------------------------------------ executor

/**
 * Runs experiment points on a ThreadPool (see file comment for the
 * parallel decomposition). The executor holds no state between run
 * calls; it is a scheduler plus the row-reduction math.
 */
class Executor
{
  public:
    explicit Executor(common::ThreadPool &pool) : pool_(pool) {}

    /**
     * Emit a periodic progress line ("replays done/total, elapsed,
     * ETA") to stderr while waiting for a batch. Off by default —
     * reports stay clean for piped/CI output.
     */
    void setProgress(bool on) { progress_ = on; }

    /**
     * Append one Perfetto track per (point, scheme) to @p exporter
     * (nullptr disables, the default). Tracks are appended during the
     * single-threaded row reduction in spec order, so the exported
     * trace is byte-identical across worker counts.
     */
    void setPerfettoExporter(trace::PerfettoExporter *exporter)
    {
        perfetto_ = exporter;
    }

    /** Run a batch of points; rows come back in spec order. */
    std::vector<MicroPoint>
    runMicro(const std::vector<MicroPointSpec> &specs);
    std::vector<WhisperRow>
    runWhisper(const std::vector<WhisperPointSpec> &specs);
    std::vector<ServerRow>
    runServer(const std::vector<ServerPointSpec> &specs);
    std::vector<RawPointResult>
    runRaw(const std::vector<RawPointSpec> &specs);

    /** Single-point conveniences. */
    MicroPoint runMicro(const MicroPointSpec &spec);
    WhisperRow runWhisper(const WhisperPointSpec &spec);
    ServerRow runServer(const ServerPointSpec &spec);
    RawPointResult runRaw(const RawPointSpec &spec);

    common::ThreadPool &pool() { return pool_; }

  private:
    common::ThreadPool &pool_;
    bool progress_ = false;
    trace::PerfettoExporter *perfetto_ = nullptr;
};

} // namespace pmodv::exp

#endif // PMODV_EXP_EXECUTOR_HH
