#include "exp/area.hh"

#include <iomanip>

namespace pmodv::exp
{

std::uint64_t
dttlbEntryBits()
{
    // 36-bit VA range tag + 32-bit PMO/domain id + 4-bit key +
    // valid + dirty + 2-bit size class = 76 bits (paper §IV-D).
    return 36 + 32 + 4 + 1 + 1 + 2;
}

std::uint64_t
ptlbEntryBits()
{
    // 10-bit domain tag + 2-bit permission (+ dirty folded into the
    // paper's 12-bit estimate).
    return 10 + 2;
}

AreaSummary
mpkVirtArea(const AreaInputs &in)
{
    AreaSummary s;
    s.newRegistersPerCore = 1; // DTT base pointer.
    s.bufferBits = in.prot.dttlbEntries * dttlbEntryBits();
    s.tlbExtensionBits = 0; // TLB keeps its MPK pkey field unchanged.
    // DTT: per domain, per-thread permissions (2 bits) dominate:
    // numDomains x numThreads x 2 bits, i.e. 256 KB at 1024 x 1024.
    s.tableBytesPerProcess =
        static_cast<std::uint64_t>(in.numDomains) * in.numThreads * 2 /
        8;
    return s;
}

AreaSummary
domainVirtArea(const AreaInputs &in)
{
    AreaSummary s;
    s.newRegistersPerCore = 2; // DRT base + PT base pointers.
    s.bufferBits = in.prot.ptlbEntries * ptlbEntryBits();
    // Each TLB entry grows by a 10-bit domain id in place of the
    // 4-bit protection key: 6 extra bits per entry.
    s.tlbExtensionBits = static_cast<std::uint64_t>(in.tlbEntries) * 6;
    // PT: numDomains x numThreads x 2 bits (256 KB) + DRT: one
    // 16-byte descriptor slot per domain per level-path (16 KB at
    // 1024 domains).
    s.tableBytesPerProcess =
        static_cast<std::uint64_t>(in.numDomains) * in.numThreads * 2 /
            8 +
        static_cast<std::uint64_t>(in.numDomains) * 16;
    return s;
}

void
printAreaTable(std::ostream &os, const AreaInputs &in)
{
    const AreaSummary mpk = mpkVirtArea(in);
    const AreaSummary dom = domainVirtArea(in);

    os << "Table VIII: area overhead summary (" << in.numDomains
       << " domains, " << in.numThreads << " threads/process)\n";
    os << std::left << std::setw(26) << "" << std::setw(34)
       << "HW MPK Virtualization" << "Domain Virtualization\n";
    os << std::setw(26) << "New registers/core" << std::setw(34)
       << (std::to_string(mpk.newRegistersPerCore) + " x 64-bit (DTT base)")
       << (std::to_string(dom.newRegistersPerCore) +
           " x 64-bit (DRT + PT base)")
       << "\n";
    os << std::setw(26) << "Buffer per core" << std::setw(34)
       << (std::to_string(in.prot.dttlbEntries) + " x " +
           std::to_string(dttlbEntryBits()) + " b = " +
           std::to_string(mpk.bufferBits / 8) + " B (DTTLB)")
       << (std::to_string(in.prot.ptlbEntries) + " x " +
           std::to_string(ptlbEntryBits()) + " b = " +
           std::to_string(dom.bufferBits / 8) + " B (PTLB)")
       << "\n";
    os << std::setw(26) << "Other changes" << std::setw(34) << "none"
       << ("+6 b per TLB entry (" +
           std::to_string(dom.tlbExtensionBits / 8) + " B total)")
       << "\n";
    os << std::setw(26) << "Memory per process" << std::setw(34)
       << (std::to_string(mpk.tableBytesPerProcess / 1024) +
           " KB (DTT)")
       << (std::to_string(dom.tableBytesPerProcess / 1024) +
           " KB (DRT + PT)")
       << "\n";
}

} // namespace pmodv::exp
