#include "exp/experiments.hh"

#include <cmath>

#include "common/logging.hh"
#include "pmo/pmo_namespace.hh"

namespace pmodv::exp
{

using arch::SchemeKind;

double
log2Pct(double pct)
{
    return pct <= 0 ? 0.0 : std::log2(pct);
}

WhisperRow
runWhisper(const std::string &name,
           const workloads::WhisperParams &wparams,
           const core::SimConfig &config)
{
    auto workload = workloads::makeWhisper(name, wparams);

    core::MultiReplay replay(config,
                             {SchemeKind::NoProtection, SchemeKind::Mpk,
                              SchemeKind::MpkVirt,
                              SchemeKind::DomainVirt});

    pmo::Namespace ns; // In-memory: WHISPER pools are ephemeral here.
    workload->run(ns, replay.sink());

    WhisperRow row;
    row.benchmark = name;
    const auto &baseline = replay.system(SchemeKind::NoProtection);
    const double seconds = baseline.seconds();
    row.switchesPerSec =
        seconds == 0
            ? 0
            : static_cast<double>(replay.counter().permissionSwitches()) /
                  seconds;
    row.overheadMpkPct =
        replay.overheadOver(SchemeKind::Mpk,
                            SchemeKind::NoProtection) * 100.0;
    row.overheadMpkVirtPct =
        replay.overheadOver(SchemeKind::MpkVirt,
                            SchemeKind::NoProtection) * 100.0;
    row.overheadDomainVirtPct =
        replay.overheadOver(SchemeKind::DomainVirt,
                            SchemeKind::NoProtection) * 100.0;
    return row;
}

namespace
{

Breakdown
computeBreakdown(const core::System &sys, const core::System &baseline)
{
    // Table VII reports each source as a percentage of the
    // *unprotected baseline* execution time; Total is the full
    // protection overhead (and therefore includes the
    // permission-change row that the lowerbound also pays).
    Breakdown b;
    const double base = static_cast<double>(baseline.totalCycles());
    if (base == 0)
        return b;
    const auto &s = sys.scheme();
    b.permissionChangePct = s.cycPermissionChange.value() / base * 100.0;
    b.entryChangesPct = s.cycEntryChange.value() / base * 100.0;
    b.tableMissPct = s.cycTableMiss.value() / base * 100.0;
    b.accessLatencyPct = s.cycAccessLatency.value() / base * 100.0;
    b.totalPct = (static_cast<double>(sys.totalCycles()) - base) / base *
                 100.0;
    // The shootdown row absorbs both the direct invalidation cycles
    // and the induced TLB refills — computed as the residual, exactly
    // the "subsequent TLB misses ... also taken into account" of the
    // paper's methodology (§V).
    b.tlbInvalidationPct = b.totalPct - b.permissionChangePct -
                           b.entryChangesPct - b.tableMissPct -
                           b.accessLatencyPct;
    // Clamp tiny negative rounding artefacts.
    if (b.tlbInvalidationPct < 0 && b.tlbInvalidationPct > -0.05)
        b.tlbInvalidationPct = 0;
    return b;
}

} // namespace

MicroPoint
runMicroPoint(const std::string &bench,
              const workloads::MicroParams &mparams,
              const core::SimConfig &config,
              const std::vector<SchemeKind> &schemes)
{
    std::vector<SchemeKind> all{SchemeKind::NoProtection,
                                SchemeKind::Lowerbound};
    for (SchemeKind k : schemes) {
        if (k != SchemeKind::NoProtection && k != SchemeKind::Lowerbound)
            all.push_back(k);
    }

    core::MultiReplay replay(config, all);
    workloads::TraceCtx ctx(replay.sink(), mparams.seed);
    auto workload = workloads::makeMicro(bench, mparams);
    workload->run(ctx);

    MicroPoint point;
    point.benchmark = bench;
    point.numPmos = mparams.numPmos;

    const auto &baseline = replay.system(SchemeKind::NoProtection);
    const double seconds = baseline.seconds();
    point.switchesPerSec =
        seconds == 0
            ? 0
            : static_cast<double>(replay.counter().permissionSwitches()) /
                  seconds;
    point.lowerboundOverheadPct =
        replay.overheadOver(SchemeKind::Lowerbound,
                            SchemeKind::NoProtection) * 100.0;

    for (SchemeKind k : all) {
        if (k == SchemeKind::NoProtection || k == SchemeKind::Lowerbound)
            continue;
        const auto &sys = replay.system(k);
        point.overheadPct[k] =
            replay.overheadOver(k, SchemeKind::Lowerbound) * 100.0;
        point.breakdown[k] = computeBreakdown(sys, baseline);
        point.keyRemaps[k] = sys.scheme().keyRemaps.value();
    }
    return point;
}

} // namespace pmodv::exp
