#include "exp/experiments.hh"

namespace pmodv::exp
{

// The shims run on a single-worker pool: same records, same Systems,
// same reduction — bit-identical to the historical serial drivers.

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

WhisperRow
runWhisper(const std::string &name,
           const workloads::WhisperParams &wparams,
           const core::SimConfig &config)
{
    common::ThreadPool pool(1);
    Executor executor(pool);
    WhisperPointSpec spec;
    spec.benchmark = name;
    spec.params = wparams;
    spec.config = config;
    return executor.runWhisper(spec);
}

MicroPoint
runMicroPoint(const std::string &bench,
              const workloads::MicroParams &mparams,
              const core::SimConfig &config,
              const std::vector<arch::SchemeKind> &schemes)
{
    common::ThreadPool pool(1);
    Executor executor(pool);
    MicroPointSpec spec;
    spec.benchmark = bench;
    spec.params = mparams;
    spec.config = config;
    spec.schemes = schemes;
    return executor.runMicro(spec);
}

#pragma GCC diagnostic pop

} // namespace pmodv::exp
