/**
 * @file
 * The declarative experiment-driver API the bench binaries consume:
 * register points (or whole sweep grids) → run(pool) → collect typed
 * rows. A suite also records its wall-clock time and worker count and
 * can serialize everything as a machine-readable JSON report
 * (`BENCH_<suite>.json` by convention) so the perf trajectory is
 * tracked across PRs.
 *
 * Typical use:
 *
 *     exp::ExperimentSuite suite("fig7_average");
 *     exp::SweepSpec sweep;
 *     sweep.pmoCounts = {16, 64, 1024};
 *     sweep.schemes = {SchemeKind::LibMpk, SchemeKind::MpkVirt,
 *                      SchemeKind::DomainVirt};
 *     suite.add(sweep);
 *     common::ThreadPool pool(opt.jobs);
 *     suite.run(pool);
 *     for (const exp::MicroPoint &pt : suite.microRows()) ...
 */

#ifndef PMODV_EXP_SUITE_HH
#define PMODV_EXP_SUITE_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "exp/executor.hh"

namespace pmodv::exp
{

/**
 * A (benchmark x PMO-count) sweep grid over the micro suite — the
 * shape of the Figure 6/7 evaluations. Expands benchmark-major:
 * all PMO counts of benchmarks[0] first, then benchmarks[1], ...
 */
struct SweepSpec
{
    /** Microbenchmark names; empty means the full Table IV suite. */
    std::vector<std::string> benchmarks;
    std::vector<unsigned> pmoCounts;
    /**
     * Optional third sweep axis: simulated core counts. Each entry
     * overrides config.topology.numCores AND sets base.numThreads to
     * the same value (one worker thread pinned per core), so every
     * core replays a live stream. Empty (the default) keeps the
     * config's own topology — the classic single-core grid.
     */
    std::vector<unsigned> coreCounts;
    workloads::MicroParams base;
    core::SimConfig config;
    std::vector<arch::SchemeKind> schemes;

    /** The grid as individual points, benchmark-major. */
    std::vector<MicroPointSpec> points() const;
};

/**
 * A (tenant-count x core-count) sweep grid over the open-loop KV
 * server — the tail-latency evaluation's shape. Each core-count entry
 * (when the axis is non-empty) overrides config.topology.numCores AND
 * base.numThreads, exactly like SweepSpec's core axis.
 */
struct ServerSweepSpec
{
    std::vector<unsigned> tenantCounts;
    std::vector<unsigned> coreCounts;
    workloads::ServerParams base;
    core::SimConfig config;
    std::vector<arch::SchemeKind> schemes;

    /** The grid as individual points, tenant-major. */
    std::vector<ServerPointSpec> points() const;
};

/**
 * A named collection of experiment points with their result rows.
 * Rows come back in registration order, independent of the worker
 * count (see executor.hh for the determinism argument).
 */
class ExperimentSuite
{
  public:
    explicit ExperimentSuite(std::string name) : name_(std::move(name))
    {
    }

    /** Forwarded to the Executor's progress reporting (see there). */
    void setProgress(bool on) { progress_ = on; }

    /** Forwarded to Executor::setPerfettoExporter (nullptr = off). */
    void setPerfettoExporter(trace::PerfettoExporter *exporter)
    {
        perfetto_ = exporter;
    }

    /** Register points; returns the row index the result will have. */
    std::size_t add(MicroPointSpec spec);
    std::size_t add(WhisperPointSpec spec);
    std::size_t add(ServerPointSpec spec);
    /** Expand and register a sweep grid; returns its first row index. */
    std::size_t add(const SweepSpec &sweep);
    std::size_t add(const ServerSweepSpec &sweep);

    /** Run every registered point on @p pool and collect the rows. */
    void run(common::ThreadPool &pool);

    const std::string &name() const { return name_; }
    const std::vector<MicroPoint> &microRows() const
    {
        return microRows_;
    }
    const std::vector<WhisperRow> &whisperRows() const
    {
        return whisperRows_;
    }
    const std::vector<ServerRow> &serverRows() const
    {
        return serverRows_;
    }

    /** Wall-clock seconds of the last run() (0 before any run). */
    double wallSeconds() const { return wallSeconds_; }
    /** Worker count of the last run() (0 before any run). */
    unsigned jobs() const { return jobs_; }

    /** Serialize name, timing and all rows as a JSON document. */
    void writeJson(std::ostream &os) const;
    /** writeJson() to @p path; returns false if the file won't open. */
    bool writeJsonFile(const std::string &path) const;

  private:
    std::string name_;
    std::vector<MicroPointSpec> micro_;
    std::vector<WhisperPointSpec> whisper_;
    std::vector<ServerPointSpec> server_;
    std::vector<MicroPoint> microRows_;
    std::vector<WhisperRow> whisperRows_;
    std::vector<ServerRow> serverRows_;
    double wallSeconds_ = 0;
    unsigned jobs_ = 0;
    bool progress_ = false;
    trace::PerfettoExporter *perfetto_ = nullptr;
};

} // namespace pmodv::exp

#endif // PMODV_EXP_SUITE_HH
