#include "arch/ptlb.hh"

#include "common/logging.hh"

namespace pmodv::arch
{

Ptlb::Ptlb(stats::Group *parent, unsigned entries, std::string name)
    : stats::Group(parent, std::move(name)),
      hits(this, "hits", "domain lookups that matched"),
      misses(this, "misses", "domain lookups that missed"),
      evictions(this, "evictions", "slots evicted by capacity"),
      missLatency(this, "miss_latency",
                  "cycles spent servicing each PTLB miss"),
      slots_(entries), tags_(entries + simd::kTagPad, 0), plru_(entries),
      touchLut_(TreePlru::makeTouchLut(entries))
{
    fatal_if(entries == 0, "PTLB needs at least one entry");
}

PtlbEntry *
Ptlb::lookup(DomainId domain)
{
    // L0 fast path: the single-hot-domain case (one tenant touching
    // one PMO repeatedly) never rescans the slot array.
    if (l0Gen_ == gen_ && l0Domain_ == domain) {
        ++l0Hits_;
        if (defer_)
            ++pend_.hits;
        else
            ++hits;
        touchSlot(l0Slot_);
        return &slots_[l0Slot_];
    }

    const int i = simd::findU64(tags_.data(),
                                static_cast<unsigned>(slots_.size()),
                                packTag(domain));
    if (i >= 0) {
        if (defer_)
            ++pend_.hits;
        else
            ++hits;
        touchSlot(static_cast<unsigned>(i));
        l0Gen_ = gen_;
        l0Domain_ = domain;
        l0Slot_ = static_cast<unsigned>(i);
        return &slots_[i];
    }
    if (defer_)
        ++pend_.misses;
    else
        ++misses;
    return nullptr;
}

const PtlbEntry *
Ptlb::probe(DomainId domain) const
{
    const int i = simd::findU64(tags_.data(),
                                static_cast<unsigned>(slots_.size()),
                                packTag(domain));
    return i >= 0 ? &slots_[i] : nullptr;
}

PtlbEntry &
Ptlb::insert(const PtlbEntry &entry, PtlbEntry &evicted,
             bool &had_eviction)
{
    had_eviction = false;
    const unsigned n = static_cast<unsigned>(slots_.size());
    int slot = simd::findU64(tags_.data(), n, packTag(entry.domain));
    if (slot < 0)
        slot = simd::findU64(tags_.data(), n, 0);
    if (slot < 0) {
        slot = static_cast<int>(plru_.victim());
        evicted = slots_[slot];
        had_eviction = true;
        if (defer_)
            ++pend_.evictions;
        else
            ++evictions;
    }
    slots_[slot] = entry;
    slots_[slot].used = true;
    tags_[slot] = packTag(entry.domain);
    touchSlot(static_cast<unsigned>(slot));
    ++gen_;
    l0Gen_ = gen_;
    l0Domain_ = entry.domain;
    l0Slot_ = static_cast<unsigned>(slot);
    return slots_[slot];
}

bool
Ptlb::invalidate(DomainId domain)
{
    const int i = simd::findU64(tags_.data(),
                                static_cast<unsigned>(slots_.size()),
                                packTag(domain));
    if (i < 0)
        return false;
    slots_[i] = PtlbEntry{};
    tags_[i] = 0;
    ++gen_;
    return true;
}

void
Ptlb::flushAll(std::vector<PtlbEntry> &dirty_out)
{
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (slots_[i].used && slots_[i].dirty)
            dirty_out.push_back(slots_[i]);
        slots_[i] = PtlbEntry{};
        tags_[i] = 0;
    }
    plru_.reset();
    ++gen_;
}

unsigned
Ptlb::usedCount() const
{
    unsigned n = 0;
    for (const auto &slot : slots_) {
        if (slot.used)
            ++n;
    }
    return n;
}

void
Ptlb::setStatsDeferred(bool defer)
{
    if (!defer && defer_)
        flushDeferredStats();
    defer_ = defer;
}

void
Ptlb::flushDeferredStats()
{
    if (pend_.hits) {
        hits += pend_.hits;
        pend_.hits = 0;
    }
    if (pend_.misses) {
        misses += pend_.misses;
        pend_.misses = 0;
    }
    if (pend_.evictions) {
        evictions += pend_.evictions;
        pend_.evictions = 0;
    }
}

} // namespace pmodv::arch
