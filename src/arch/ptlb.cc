#include "arch/ptlb.hh"

#include "common/logging.hh"

namespace pmodv::arch
{

Ptlb::Ptlb(stats::Group *parent, unsigned entries, std::string name)
    : stats::Group(parent, std::move(name)),
      hits(this, "hits", "domain lookups that matched"),
      misses(this, "misses", "domain lookups that missed"),
      evictions(this, "evictions", "slots evicted by capacity"),
      missLatency(this, "miss_latency",
                  "cycles spent servicing each PTLB miss"),
      slots_(entries), plru_(entries)
{
    fatal_if(entries == 0, "PTLB needs at least one entry");
}

PtlbEntry *
Ptlb::lookup(DomainId domain)
{
    for (unsigned i = 0; i < slots_.size(); ++i) {
        if (slots_[i].used && slots_[i].domain == domain) {
            ++hits;
            plru_.touch(i);
            return &slots_[i];
        }
    }
    ++misses;
    return nullptr;
}

const PtlbEntry *
Ptlb::probe(DomainId domain) const
{
    for (const auto &slot : slots_) {
        if (slot.used && slot.domain == domain)
            return &slot;
    }
    return nullptr;
}

PtlbEntry &
Ptlb::insert(const PtlbEntry &entry, PtlbEntry &evicted,
             bool &had_eviction)
{
    had_eviction = false;
    unsigned slot = static_cast<unsigned>(slots_.size());
    for (unsigned i = 0; i < slots_.size(); ++i) {
        if (slots_[i].used && slots_[i].domain == entry.domain) {
            slot = i;
            break;
        }
        if (slot == slots_.size() && !slots_[i].used)
            slot = i;
    }
    if (slot == slots_.size()) {
        slot = plru_.victim();
        evicted = slots_[slot];
        had_eviction = true;
        ++evictions;
    }
    slots_[slot] = entry;
    slots_[slot].used = true;
    plru_.touch(slot);
    return slots_[slot];
}

bool
Ptlb::invalidate(DomainId domain)
{
    for (auto &slot : slots_) {
        if (slot.used && slot.domain == domain) {
            slot = PtlbEntry{};
            return true;
        }
    }
    return false;
}

void
Ptlb::flushAll(std::vector<PtlbEntry> &dirty_out)
{
    for (auto &slot : slots_) {
        if (slot.used && slot.dirty)
            dirty_out.push_back(slot);
        slot = PtlbEntry{};
    }
    plru_.reset();
}

unsigned
Ptlb::usedCount() const
{
    unsigned n = 0;
    for (const auto &slot : slots_) {
        if (slot.used)
            ++n;
    }
    return n;
}

} // namespace pmodv::arch
