#include "arch/scheme.hh"

#include "common/logging.hh"
#include "stats/timeseries.hh"

namespace pmodv::arch
{

const char *
schemeName(SchemeKind kind)
{
    switch (kind) {
      case SchemeKind::NoProtection:
        return "none";
      case SchemeKind::Lowerbound:
        return "lowerbound";
      case SchemeKind::Mpk:
        return "mpk";
      case SchemeKind::LibMpk:
        return "libmpk";
      case SchemeKind::MpkVirt:
        return "mpk_virt";
      case SchemeKind::DomainVirt:
        return "domain_virt";
    }
    return "unknown";
}

SchemeKind
schemeFromName(const std::string &name)
{
    if (name == "none")
        return SchemeKind::NoProtection;
    if (name == "lowerbound")
        return SchemeKind::Lowerbound;
    if (name == "mpk")
        return SchemeKind::Mpk;
    if (name == "libmpk")
        return SchemeKind::LibMpk;
    if (name == "mpk_virt")
        return SchemeKind::MpkVirt;
    if (name == "domain_virt")
        return SchemeKind::DomainVirt;
    fatal("unknown protection scheme '%s'", name.c_str());
}

ProtectionScheme::ProtectionScheme(stats::Group *parent, std::string name,
                                   const ProtParams &params,
                                   const CoreTopology &topo,
                                   const tlb::AddressSpace &space)
    : stats::Group(parent, name),
      cycPermissionChange(this, "cyc_permission_change",
                          "cycles in SETPERM/WRPKRU instructions"),
      cycEntryChange(this, "cyc_entry_change",
                     "cycles adding/removing/modifying buffer entries"),
      cycTableMiss(this, "cyc_table_miss",
                   "cycles in DTT walks / PT lookups"),
      cycTlbInvalidation(this, "cyc_tlb_invalidation",
                         "direct cycles in TLB shootdowns"),
      cycAccessLatency(this, "cyc_access_latency",
                       "per-access lookup cycles (PTLB)"),
      cycSoftware(this, "cyc_software",
                  "software path cycles (syscalls, PTE rewrites)"),
      permChanges(this, "perm_changes", "SETPERM/WRPKRU executed"),
      setperms(this, "setperms", "SETPERM instructions executed"),
      wrpkrus(this, "wrpkrus", "raw WRPKRU instructions executed"),
      keyRemaps(this, "key_remaps", "domain-to-key (re)assignments"),
      keyEvictions(this, "key_evictions",
                   "victim domains that lost their protection key"),
      shootdowns(this, "shootdowns", "ranged TLB invalidations issued"),
      shootdownPages(this, "shootdown_pages",
                     "TLB entries invalidated by shootdowns"),
      protectionFaults(this, "protection_faults", "accesses denied"),
      params_(params), topo_(topo), space_(space),
      label_(std::move(name))
{
    topo_.validate();
    profile_.setNumCores(topo_.numCores);
}

void
ProtectionScheme::attachCore(CoreId core, tlb::TlbHierarchy *tlb)
{
    fatal_if(core >= topo_.numCores,
             "attachCore: core %u out of range (topology has %u)", core,
             topo_.numCores);
    if (core >= coreTlbs_.size())
        coreTlbs_.resize(core + 1, nullptr);
    fatal_if(coreTlbs_[core] != nullptr,
             "attachCore: core %u attached twice", core);
    coreTlbs_[core] = tlb;
    if (core == 0)
        tlb_ = tlb;
    onCoreAttached(core, tlb);
}

void
ProtectionScheme::onCoreAttached(CoreId, tlb::TlbHierarchy *)
{
}

tlb::TlbHierarchy &
ProtectionScheme::tlbAt(CoreId core) const
{
    fatal_if(core >= coreTlbs_.size() || !coreTlbs_[core],
             "no TLB attached for core %u", core);
    return *coreTlbs_[core];
}

std::uint64_t
ProtectionScheme::flushRangeAllCores(Addr base, Addr size)
{
    std::uint64_t flushed = 0;
    for (tlb::TlbHierarchy *tlb : coreTlbs_) {
        if (tlb)
            flushed += tlb->flushRange(base, size);
    }
    return flushed;
}

void
ProtectionScheme::flushKeyAllCores(ProtKey key)
{
    for (tlb::TlbHierarchy *tlb : coreTlbs_) {
        if (tlb)
            tlb->flushKey(key);
    }
}

void
ProtectionScheme::registerTimelineTracks(stats::TimeSeries &timeline)
{
    timeline.track(keyEvictions, "key_evictions");
    timeline.track(shootdowns, "shootdowns");
    timeline.track(shootdownPages, "shootdown_pages");
    timeline.track(permChanges, "perm_changes");
}

void
ProtectionScheme::setStatsDeferred(bool defer)
{
    if (!defer && statsDeferred_)
        ProtectionScheme::flushDeferredStats();
    statsDeferred_ = defer;
}

void
ProtectionScheme::flushDeferredStats()
{
    if (pendCycAccessLatency_) {
        cycAccessLatency += pendCycAccessLatency_;
        pendCycAccessLatency_ = 0;
    }
    if (pendCycTableMiss_) {
        cycTableMiss += pendCycTableMiss_;
        pendCycTableMiss_ = 0;
    }
}

Cycles
ProtectionScheme::chargeSetPerm()
{
    ++permChanges;
    ++setperms;
    cycPermissionChange += static_cast<double>(params_.wrpkruCycles);
    return params_.wrpkruCycles;
}

Cycles
ProtectionScheme::chargeWrpkru()
{
    ++permChanges;
    ++wrpkrus;
    cycPermissionChange += static_cast<double>(params_.wrpkruCycles);
    return params_.wrpkruCycles;
}

Cycles
ProtectionScheme::wrpkruRaw(ThreadId, ProtKey, Perm)
{
    return chargeWrpkru();
}

CheckResult
ProtectionScheme::judge(const AccessContext &ctx, Perm domain_perm,
                        Cycles extra) const
{
    CheckResult res;
    res.extraCycles = extra;
    const Perm need = permForAccess(ctx.type);
    const Perm page = ctx.entry ? ctx.entry->pagePerm : Perm::ReadWrite;
    // The strictest of page and domain permission governs.
    const Perm effective = permIntersect(page, domain_perm);
    if (!permAllows(effective, need)) {
        res.allowed = false;
        res.fault = permAllows(page, need) ? FaultKind::DomainPermission
                                           : FaultKind::PagePermission;
    }
    return res;
}

} // namespace pmodv::arch
