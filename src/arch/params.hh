/**
 * @file
 * Cost and sizing parameters of every protection mechanism, mirroring
 * the paper's Table II plus the libmpk cost-model constants
 * documented in DESIGN.md §5/§6.
 */

#ifndef PMODV_ARCH_PARAMS_HH
#define PMODV_ARCH_PARAMS_HH

#include <string>

#include "common/types.hh"

namespace pmodv::arch
{

/** Which protection scheme a pipeline models. */
enum class SchemeKind
{
    NoProtection,  ///< Unprotected baseline.
    Lowerbound,    ///< Ideal: only WRPKRU/SETPERM instruction cost.
    Mpk,           ///< Stock Intel MPK (max 16 keys, no virtualization).
    LibMpk,        ///< Software MPK virtualization (libmpk, ATC'19).
    MpkVirt,       ///< Proposed HW MPK virtualization (DTT + DTTLB).
    DomainVirt,    ///< Proposed HW domain virtualization (DRT/PT/PTLB).
};

/** Short lowercase name used in reports and CLIs. */
const char *schemeName(SchemeKind kind);

/** Parse a scheme name; fatal() on unknown names. */
SchemeKind schemeFromName(const std::string &name);

/** Tunable costs/sizes for all schemes (Table II defaults). */
struct ProtParams
{
    // --- common / stock MPK ---
    Cycles wrpkruCycles = 27;  ///< WRPKRU / SETPERM instruction cost.

    // --- hardware MPK virtualization ---
    unsigned dttlbEntries = 16;
    Cycles dttlbHitCycles = 1;
    Cycles dttlbEntryOpCycles = 1; ///< Add/remove/modify an entry.
    Cycles dttWalkCycles = 30;     ///< DTTLB miss: walk the DTT.
    Cycles freeKeyCheckCycles = 1;
    Cycles pkruUpdateCycles = 1;

    // --- hardware domain virtualization ---
    unsigned ptlbEntries = 16;
    Cycles ptlbAccessCycles = 1;  ///< Added to every domain access.
    Cycles ptlbMissCycles = 30;   ///< Includes the PT lookup.
    Cycles ptlbEntryOpCycles = 1;

    // --- context switches ---
    /** Per dirty entry written back to DTT/PT on a context switch. */
    Cycles contextSwitchWritebackCycles = 1;

    // --- libmpk software virtualization (DESIGN.md §6) ---
    /** Trap into the kernel + syscall path per pkey_mprotect pair. */
    Cycles libmpkSyscallCycles = 900;
    /** Rewriting the pkey field of one PTE (per 4 KB page). */
    Cycles libmpkPtePatchCycles = 1;
    /** User-level bookkeeping on the libmpk fast path (hash lookup). */
    Cycles libmpkFastPathCycles = 12;
};

/** A core identifier inside one simulated machine (0..numCores-1). */
using CoreId = unsigned;

/** Hard ceiling on the modelled core count (sizing sanity check). */
inline constexpr unsigned kMaxCores = 256;

/**
 * The machine's core layout and cross-core invalidation cost — the
 * validated configuration section that replaced the free-floating
 * `ProtParams::numCores` multiplier. With more than one core, replay
 * schedules trace streams core-affinely and shootdowns become
 * broadcast IPIs charged per responding core (arch::ShootdownBus).
 */
struct CoreTopology
{
    unsigned numCores = 1;
    /** Ranged TLB shootdown cost, per core that must invalidate. */
    Cycles tlbInvalidationCycles = 286;

    /** fatal() with a clear message unless 1 <= numCores <= 256. */
    void validate() const;
};

} // namespace pmodv::arch

#endif // PMODV_ARCH_PARAMS_HH
