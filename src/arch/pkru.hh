/**
 * @file
 * The MPK register-level substrate: per-thread PKRU register state
 * (2 bits per protection key: access-disable and write-disable, as in
 * the Intel SDM) and the kernel-side protection-key allocator.
 */

#ifndef PMODV_ARCH_PKRU_HH
#define PMODV_ARCH_PKRU_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace pmodv::arch
{

/**
 * One thread's PKRU register. Bit 2k is AD (access disable) and bit
 * 2k+1 is WD (write disable) for key k, exactly the architectural
 * layout, so raw() round-trips with WRPKRU/RDPKRU semantics.
 */
class Pkru
{
  public:
    /** Reset state: key 0 fully open, all other keys inaccessible. */
    Pkru() { reset(); }

    /** Restore the reset state. */
    void reset();

    /** Read the architectural 32-bit register value (RDPKRU). */
    std::uint32_t raw() const { return value_; }

    /** Write the architectural 32-bit register value (WRPKRU). */
    void setRaw(std::uint32_t v) { value_ = v; }

    /** Permission the register grants for @p key. */
    Perm permFor(ProtKey key) const;

    /** Set the permission bits of one key (pkey_set). */
    void setPerm(ProtKey key, Perm perm);

    bool operator==(const Pkru &) const = default;

  private:
    std::uint32_t value_ = 0;
};

/**
 * Kernel protection-key allocator (pkey_alloc / pkey_free). Key 0 is
 * reserved as the default/domainless key and never handed out.
 */
class KeyAllocator
{
  public:
    KeyAllocator() = default;

    /**
     * Allocate an unused key; returns kInvalidKey when all 15
     * allocatable keys are taken (the ENOSPC case the paper
     * highlights).
     */
    ProtKey alloc();

    /** Free a previously allocated key; false if it was not taken. */
    bool free(ProtKey key);

    /** True when @p key is currently allocated. */
    bool isAllocated(ProtKey key) const;

    /** Number of keys currently allocated (excluding key 0). */
    unsigned allocatedCount() const;

    /** Number of keys still available. */
    unsigned freeCount() const
    {
        return (kNumProtKeys - 1) - allocatedCount();
    }

  private:
    /** Bitmap over keys 1..15; bit set = allocated. */
    std::uint16_t taken_ = 0;
};

/**
 * Per-thread PKRU file: the OS view that saves/restores PKRU across
 * context switches. Lazily creates a reset-state register per thread.
 *
 * Thread ids are dense small integers in every trace, so the file is
 * a flat vector indexed by ThreadId with on-demand growth — the
 * per-access lookup in the MPK-family checkAccess paths is an array
 * index, not a hash probe. An untouched slot holds the reset state,
 * which is indistinguishable from a never-created register: resetKey
 * only ever targets keys 1..15, whose reset-state bits are already
 * AD|WD (exactly what setPerm(key, None) writes).
 */
class PkruFile
{
  public:
    Pkru &
    forThread(ThreadId tid)
    {
        if (tid >= regs_.size()) [[unlikely]]
            regs_.resize(std::size_t{tid} + 1);
        return regs_[tid];
    }

    const Pkru &
    forThread(ThreadId tid) const
    {
        static const Pkru reset_state;
        return tid < regs_.size() ? regs_[tid] : reset_state;
    }

    /**
     * Clear @p key's permission bits in every thread's register. The
     * kernel does this when a key changes hands (pkey_free +
     * pkey_alloc reuse, or a virtualization-layer remap): without it,
     * stale PKRU bits from the key's previous owner would grant
     * threads unintended access to the new holder.
     */
    void
    resetKey(ProtKey key)
    {
        for (Pkru &pkru : regs_)
            pkru.setPerm(key, Perm::None);
    }

  private:
    std::vector<Pkru> regs_;
};

} // namespace pmodv::arch

#endif // PMODV_ARCH_PKRU_HH
