#include "arch/factory.hh"

#include "arch/domain_virt.hh"
#include "arch/libmpk.hh"
#include "arch/mpk.hh"
#include "arch/mpk_virt.hh"
#include "common/logging.hh"

namespace pmodv::arch
{

std::unique_ptr<ProtectionScheme>
makeScheme(SchemeKind kind, stats::Group *parent,
           const ProtParams &params, const CoreTopology &topo,
           const tlb::AddressSpace &space)
{
    switch (kind) {
      case SchemeKind::NoProtection:
        return std::make_unique<NoProtectionScheme>(parent, params,
                                                    topo, space);
      case SchemeKind::Lowerbound:
        return std::make_unique<LowerboundScheme>(parent, params, topo,
                                                  space);
      case SchemeKind::Mpk:
        return std::make_unique<MpkScheme>(parent, params, topo, space);
      case SchemeKind::LibMpk:
        return std::make_unique<LibMpkScheme>(parent, params, topo,
                                              space);
      case SchemeKind::MpkVirt:
        return std::make_unique<MpkVirtScheme>(parent, params, topo,
                                               space);
      case SchemeKind::DomainVirt:
        return std::make_unique<DomainVirtScheme>(parent, params, topo,
                                                  space);
    }
    panic("unhandled scheme kind");
}

} // namespace pmodv::arch
