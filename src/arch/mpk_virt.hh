/**
 * @file
 * The paper's first proposed design: **hardware MPK virtualization**.
 *
 * MPK is kept intact (PKRU, pkey-stamped TLB entries); a Domain
 * Translation Table (DTT, an OS-managed radix tree over VA) records
 * for every attached PMO its domain id, the key it currently maps to
 * and the per-thread domain permissions. A 16-entry DTTLB caches DTT
 * entries. On a TLB miss to a domain with no key, a free key is
 * claimed — or an LRU victim domain's key is reassigned, which costs
 * a PKRU update and a ranged TLB shootdown of the victim's pages.
 */

#ifndef PMODV_ARCH_MPK_VIRT_HH
#define PMODV_ARCH_MPK_VIRT_HH

#include <array>
#include <memory>
#include <unordered_map>

#include "arch/dttlb.hh"
#include "arch/pkru.hh"
#include "arch/radix.hh"
#include "arch/scheme.hh"

namespace pmodv::arch
{

/** Per-domain payload stored in DTT PMO-root entries. */
struct DttInfo
{
    /** Key the domain currently maps to (kInvalidKey when unmapped). */
    ProtKey key = kInvalidKey;
    /** Per-thread domain permission (absent threads have Perm::None). */
    std::unordered_map<ThreadId, Perm> perms;
    /** Cached region bounds for shootdowns. */
    Addr base = 0;
    Addr size = 0;
    DomainId domain = kNullDomain;
};

/** Hardware MPK virtualization. */
class MpkVirtScheme : public ProtectionScheme
{
  public:
    MpkVirtScheme(stats::Group *parent, const ProtParams &params,
                  const CoreTopology &topo,
                  const tlb::AddressSpace &space);

    void registerTimelineTracks(stats::TimeSeries &timeline) override;

    void setStatsDeferred(bool defer) override;
    void flushDeferredStats() override;

    CheckResult checkAccess(const AccessContext &ctx) override;
    Cycles setPerm(ThreadId tid, DomainId domain, Perm perm) override;
    Cycles attach(ThreadId tid, DomainId domain, Addr base, Addr size,
                  Perm max_perm) override;
    Cycles detach(ThreadId tid, DomainId domain) override;
    Cycles contextSwitch(ThreadId from, ThreadId to) override;
    Perm effectivePerm(ThreadId tid, DomainId domain) const override;

    /** The domain currently holding @p key (kNullDomain if free). */
    DomainId domainOfKey(ProtKey key) const;

    /** The key currently held by @p domain (kInvalidKey if none). */
    ProtKey keyOf(DomainId domain) const;

    const Pkru &pkru(ThreadId tid) const { return pkrus_.forThread(tid); }
    /** Core 0's DTTLB (the only one on single-core machines). */
    Dttlb &dttlb() { return *dttlbs_[0]; }
    /** Core @p core's private DTTLB. */
    Dttlb &dttlbAt(CoreId core) { return *dttlbs_[core]; }
    const VaRadixTree<DttInfo> &dtt() const { return dtt_; }

    /** DTT memory footprint in bytes (Table VIII model). */
    std::uint64_t dttMemoryBytes() const;

    stats::Scalar dttWalks;
    stats::Scalar dttlbWritebacks;
    stats::Scalar contextSwitches;

  protected:
    void onCoreAttached(CoreId core, tlb::TlbHierarchy *tlb) override;

  private:
    class FillPolicy : public tlb::TlbFillPolicy
    {
      public:
        explicit FillPolicy(MpkVirtScheme &owner) : owner_(owner) {}
        Cycles fill(ThreadId tid, Addr va, const tlb::Region *region,
                    tlb::TlbEntry &entry) override;

      private:
        MpkVirtScheme &owner_;
    };

    /**
     * Resolve the key for @p info on a TLB-miss fill, remapping if
     * needed. Returns the extra cycles spent.
     */
    Cycles resolveKey(ThreadId tid, DttInfo &info);

    /** Assign @p key to @p info, updating DTT/DTTLB/PKRU/recency. */
    void bindKey(ThreadId tid, DttInfo &info, ProtKey key);

    /** Pick the LRU victim among current key holders. */
    ProtKey victimKey() const;

    /** Mark @p key most recently used. */
    void touchKey(ProtKey key);

    /** Install/update the active core's DTTLB entry; returns cycles. */
    Cycles cacheInDttlb(DttInfo &info);

    /** Invalidate @p domain in EVERY core's DTTLB. */
    void invalidateDomainAllDttlbs(DomainId domain);

    Perm permOf(const DttInfo &info, ThreadId tid) const;

    std::unique_ptr<FillPolicy> fillPolicyStorage_;
    VaRadixTree<DttInfo> dtt_;
    /** Owning index of all DTT payloads by domain. */
    std::unordered_map<DomainId, std::shared_ptr<DttInfo>> domains_;
    /** Per-core DTTLBs; [0] exists from construction. */
    std::vector<std::unique_ptr<Dttlb>> dttlbs_;
    KeyAllocator keyAlloc_;
    PkruFile pkrus_;
    std::array<DomainId, kNumProtKeys> keyHolder_{};
    /** LRU stamps for victim selection among key holders. */
    std::array<std::uint64_t, kNumProtKeys> keyStamp_{};
    std::uint64_t keyClock_ = 0;
    ThreadId currentThread_ = 0;
    /** Deferred DTT-walk count (see setStatsDeferred). */
    std::uint64_t pendDttWalks_ = 0;
};

} // namespace pmodv::arch

#endif // PMODV_ARCH_MPK_VIRT_HH
