/**
 * @file
 * A page-table-shaped radix tree over virtual addresses, used for
 * both OS-managed structures the paper introduces:
 *
 *  - the Domain Translation Table (DTT) of the MPK-virtualization
 *    design (payload: current key + per-thread permissions), and
 *  - the Domain Range Table (DRT) of the domain-virtualization design
 *    (payload: none, only the domain id).
 *
 * The tree has four levels matching x86-64 paging (PML4/PDPT/PD/PT:
 * 512 GB / 1 GB / 2 MB / 4 KB slots). A slot is either empty, a
 * *directory entry* (next-level bit = 1) pointing to a child node, or
 * a *PMO root entry* (next-level bit = 0) holding the domain id and a
 * shared payload. A PMO whose VA reservation spans several aligned
 * slots installs one root entry per slot, all sharing one payload.
 */

#ifndef PMODV_ARCH_RADIX_HH
#define PMODV_ARCH_RADIX_HH

#include <array>
#include <memory>
#include <vector>

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace pmodv::arch
{

/** Number of slots per radix node (9 VA bits). */
inline constexpr unsigned kRadixFanout = 512;

/** Number of levels (PML4 -> PT). */
inline constexpr unsigned kRadixLevels = 4;

/** log2 of the byte span of one slot at each level (0 = PML4). */
constexpr unsigned
radixSlotShift(unsigned level)
{
    // level 0: 39 (512 GB), 1: 30 (1 GB), 2: 21 (2 MB), 3: 12 (4 KB).
    return 39 - 9 * level;
}

/** Slot index of @p va at @p level. */
constexpr unsigned
radixSlotIndex(Addr va, unsigned level)
{
    return static_cast<unsigned>((va >> radixSlotShift(level)) & 0x1ff);
}

/**
 * The VA-indexed radix tree. @tparam Payload per-domain data stored
 * in PMO root entries (may be empty for the DRT).
 */
template <typename Payload>
class VaRadixTree
{
  public:
    /** Result of walking the tree for a VA. */
    struct WalkResult
    {
        bool found = false;
        DomainId domain = kNullDomain;
        Payload *payload = nullptr;
        /** Levels visited, including the one holding the root entry. */
        unsigned depth = 0;
    };

    VaRadixTree() : root_(std::make_unique<Node>()) {}

    /**
     * Install root entries covering [base, base+size) for @p domain.
     * The range must be 4 KB aligned; it is greedily decomposed into
     * the largest aligned slots. All entries share @p payload.
     */
    void
    insert(Addr base, Addr size, DomainId domain,
           std::shared_ptr<Payload> payload)
    {
        panic_if(domain == kNullDomain,
                 "cannot insert the NULL domain into a radix tree");
        panic_if(!isAligned(base, 4096) || !isAligned(size, 4096),
                 "radix insert range must be 4KB aligned");
        panic_if(size == 0, "radix insert of empty range");
        Addr va = base;
        const Addr end = base + size;
        while (va < end) {
            unsigned level = kRadixLevels - 1;
            // Use the largest slot that is aligned and fits.
            for (unsigned l = 1; l < kRadixLevels; ++l) {
                const Addr span = Addr{1} << radixSlotShift(l);
                if (isAligned(va, span) && va + span <= end) {
                    level = l;
                    break;
                }
            }
            installRoot(va, level, domain, payload);
            va += Addr{1} << radixSlotShift(level);
        }
    }

    /**
     * Walk the tree for @p va (the hardware walker's algorithm).
     *
     * The last walk is memoized by its slot path: every VA sharing the
     * index path down to the level the walk stopped at resolves to the
     * same slot, hence the same result (found or not). Any mutation
     * invalidates the memo, so this is purely a pointer-chase saver —
     * results are identical to an uncached walk.
     */
    WalkResult
    walk(Addr va) const
    {
        if (memoValid_ && (va >> memoShift_) == memoKey_)
            return memoRes_;
        WalkResult res;
        const Node *node = root_.get();
        unsigned level = 0;
        for (; level < kRadixLevels; ++level) {
            ++res.depth;
            const Slot &slot = node->slots[radixSlotIndex(va, level)];
            if (!slot.valid)
                break;
            if (!slot.nextLevel) {
                res.found = true;
                res.domain = slot.domain;
                res.payload = slot.payload.get();
                break;
            }
            node = slot.child.get();
        }
        memoShift_ = radixSlotShift(level < kRadixLevels
                                        ? level
                                        : kRadixLevels - 1);
        memoKey_ = va >> memoShift_;
        memoRes_ = res;
        memoValid_ = true;
        return res;
    }

    /**
     * Remove every root entry of @p domain; returns the number of
     * entries removed. Empty directory nodes are pruned.
     */
    unsigned
    remove(DomainId domain)
    {
        memoValid_ = false;
        return removeRec(*root_, domain);
    }

    /** Number of allocated nodes (for the memory-usage model). */
    std::uint64_t
    nodeCount() const
    {
        return countRec(*root_);
    }

    /** Total root entries currently installed. */
    std::uint64_t
    rootEntryCount() const
    {
        return rootsRec(*root_);
    }

  private:
    struct Node;

    struct Slot
    {
        bool valid = false;
        bool nextLevel = false; ///< 1 = directory, 0 = PMO root entry.
        DomainId domain = kNullDomain;
        std::shared_ptr<Payload> payload;
        std::unique_ptr<Node> child;
    };

    struct Node
    {
        std::array<Slot, kRadixFanout> slots;
    };

    void
    installRoot(Addr va, unsigned level, DomainId domain,
                std::shared_ptr<Payload> payload)
    {
        memoValid_ = false;
        Node *node = root_.get();
        for (unsigned l = 0; l < level; ++l) {
            Slot &slot = node->slots[radixSlotIndex(va, l)];
            if (!slot.valid) {
                slot.valid = true;
                slot.nextLevel = true;
                slot.child = std::make_unique<Node>();
            }
            panic_if(!slot.nextLevel,
                     "radix insert collides with an existing root entry");
            node = slot.child.get();
        }
        Slot &slot = node->slots[radixSlotIndex(va, level)];
        panic_if(slot.valid, "radix insert over an occupied slot");
        slot.valid = true;
        slot.nextLevel = false;
        slot.domain = domain;
        slot.payload = std::move(payload);
    }

    unsigned
    removeRec(Node &node, DomainId domain)
    {
        unsigned removed = 0;
        for (Slot &slot : node.slots) {
            if (!slot.valid)
                continue;
            if (!slot.nextLevel) {
                if (slot.domain == domain) {
                    slot = Slot{};
                    ++removed;
                }
            } else {
                removed += removeRec(*slot.child, domain);
                if (isEmpty(*slot.child))
                    slot = Slot{};
            }
        }
        return removed;
    }

    static bool
    isEmpty(const Node &node)
    {
        for (const Slot &slot : node.slots) {
            if (slot.valid)
                return false;
        }
        return true;
    }

    std::uint64_t
    countRec(const Node &node) const
    {
        std::uint64_t n = 1;
        for (const Slot &slot : node.slots) {
            if (slot.valid && slot.nextLevel)
                n += countRec(*slot.child);
        }
        return n;
    }

    std::uint64_t
    rootsRec(const Node &node) const
    {
        std::uint64_t n = 0;
        for (const Slot &slot : node.slots) {
            if (!slot.valid)
                continue;
            if (slot.nextLevel)
                n += rootsRec(*slot.child);
            else
                ++n;
        }
        return n;
    }

    std::unique_ptr<Node> root_;

    // Last-walk memo (see walk()); logically const, hence mutable.
    mutable bool memoValid_ = false;
    mutable unsigned memoShift_ = 0;
    mutable Addr memoKey_ = 0;
    mutable WalkResult memoRes_{};
};

} // namespace pmodv::arch

#endif // PMODV_ARCH_RADIX_HH
