/**
 * @file
 * Per-domain attribution counters — which PMOs a scheme spends its
 * protection work on. Every ProtectionScheme owns one DomainProfile
 * and feeds it from its hook sites: accesses that resolved to a
 * domain, protection-fill misses (DTTLB/PTLB refills, libmpk remap
 * traps), key evictions *suffered* (the victim's side), pages the
 * victim lost to the resulting shootdown, and SETPERMs executed on
 * the domain. The profile ranks domains into a "hot domains" table
 * (text reports and suite JSON), answering the paper-motivating
 * question "which PMO is thrashing the key space?".
 *
 * Domains are dense small integers in every workload (1..numPmos), so
 * the table is a flat vector indexed by DomainId with on-demand
 * growth; counting is branch-free beyond the bounds check.
 */

#ifndef PMODV_ARCH_DOMAIN_PROFILE_HH
#define PMODV_ARCH_DOMAIN_PROFILE_HH

#include <cstdint>
#include <vector>

#include "arch/params.hh"
#include "common/types.hh"

namespace pmodv::arch
{

/** Counters attributed to one domain. */
struct DomainCounters
{
    std::uint64_t accesses = 0;   ///< Checked accesses to the domain.
    std::uint64_t fillMisses = 0; ///< DTTLB/PTLB refills, remap traps.
    std::uint64_t evictions = 0;  ///< Times the domain lost its key.
    std::uint64_t shootdownPages = 0; ///< TLB entries lost to them.
    std::uint64_t setperms = 0;   ///< SETPERMs targeting the domain.

    bool
    zero() const
    {
        return accesses == 0 && fillMisses == 0 && evictions == 0 &&
               shootdownPages == 0 && setperms == 0;
    }
};

/** One row of the hot-domain ranking. */
struct HotDomain
{
    DomainId domain = kNullDomain;
    DomainCounters counters;
};

/**
 * Protection work attributed to one core of a multi-core replay:
 * which core's accesses drive the key churn, and which core keeps
 * initiating shootdowns. Only populated when the owning scheme runs
 * on a multi-core topology (setNumCores with K > 1).
 */
struct CoreAttribution
{
    std::uint64_t accesses = 0;  ///< Domain-resolved checked accesses.
    std::uint64_t evictionsInitiated = 0; ///< Evictions this core caused.
    std::uint64_t shootdownPages = 0; ///< Pages its broadcasts flushed.
};

/** The per-scheme domain attribution table. */
class DomainProfile
{
  public:
    /**
     * Enable per-core attribution for a @p n-core machine. Called by
     * the scheme base once at construction; single-core machines
     * (n == 1) keep the per-core table empty and the per-core hooks
     * free.
     */
    void
    setNumCores(unsigned n)
    {
        perCore_.assign(n > 1 ? n : 0, CoreAttribution{});
    }

    void access(DomainId d) { ++at(d).accesses; }
    void fillMiss(DomainId d) { ++at(d).fillMisses; }
    void setPerm(DomainId d) { ++at(d).setperms; }

    /** access() attributed to the issuing @p core as well. */
    void
    access(DomainId d, CoreId core)
    {
        ++at(d).accesses;
        if (core < perCore_.size())
            ++perCore_[core].accesses;
    }

    /** Domain @p d lost its key; @p pages translations went with it. */
    void
    eviction(DomainId d, std::uint64_t pages)
    {
        DomainCounters &c = at(d);
        ++c.evictions;
        c.shootdownPages += pages;
    }

    /** eviction() charged to the initiating @p core as well. */
    void
    eviction(DomainId d, std::uint64_t pages, CoreId core)
    {
        eviction(d, pages);
        if (core < perCore_.size()) {
            ++perCore_[core].evictionsInitiated;
            perCore_[core].shootdownPages += pages;
        }
    }

    /** Cores with per-core attribution (0 on single-core machines). */
    unsigned
    numCores() const
    {
        return static_cast<unsigned>(perCore_.size());
    }

    /** Core @p core's attribution row (zeros when out of range). */
    CoreAttribution
    coreAttribution(CoreId core) const
    {
        return core < perCore_.size() ? perCore_[core]
                                      : CoreAttribution{};
    }

    /** Counters of @p d (zeros when never touched). */
    DomainCounters counters(DomainId d) const;

    /** Domains with at least one non-zero counter. */
    std::size_t numActiveDomains() const;

    /**
     * The @p n hottest domains, ranked by protection pain: evictions
     * desc, then shootdown pages, fill misses and accesses desc, with
     * the domain id as the final (ascending) tie-break — fully
     * deterministic, so reports are stable across runs and job counts.
     */
    std::vector<HotDomain> topN(std::size_t n) const;

  private:
    DomainCounters &
    at(DomainId d)
    {
        if (d < table_.size()) [[likely]]
            return table_[d];
        return grow(d);
    }

    /** Out-of-line resize for first-touch of a new domain id. */
    DomainCounters &grow(DomainId d);

    std::vector<DomainCounters> table_; ///< Indexed by DomainId.
    std::vector<CoreAttribution> perCore_; ///< Indexed by CoreId (K>1).
};

} // namespace pmodv::arch

#endif // PMODV_ARCH_DOMAIN_PROFILE_HH
