/**
 * @file
 * The ProtectionScheme interface: the contract every evaluated
 * mechanism (no-protection, lowerbound, stock MPK, libmpk, HW MPK
 * virtualization, HW domain virtualization) implements.
 *
 * A scheme is both *functional* (it decides whether each access is
 * legal, maintaining real PKRU/DTT/DTTLB/PT/PTLB state) and *timing*
 * (it reports the extra cycles its structures consumed, bucketed into
 * the overhead categories of the paper's Table VII).
 */

#ifndef PMODV_ARCH_SCHEME_HH
#define PMODV_ARCH_SCHEME_HH

#include <string>
#include <vector>

#include "arch/domain_profile.hh"
#include "arch/params.hh"
#include "common/types.hh"
#include "stats/stats.hh"
#include "tlb/hierarchy.hh"
#include "trace/event_ring.hh"

namespace pmodv::arch
{

class ShootdownBus;

/** Why an access was denied. */
enum class FaultKind : std::uint8_t
{
    None = 0,
    PagePermission,   ///< Page-level permission insufficient.
    DomainPermission, ///< Thread lacks domain permission.
    NotAttached,      ///< VA belongs to no attached PMO mapping.
};

/** Outcome of a per-access protection check. */
struct CheckResult
{
    bool allowed = true;
    Cycles extraCycles = 0;
    FaultKind fault = FaultKind::None;
};

/** The context of one memory access being checked. */
struct AccessContext
{
    ThreadId tid = 0;
    Addr va = 0;
    AccessType type = AccessType::Read;
    /** The translation the access resolved to (never null). */
    const tlb::TlbEntry *entry = nullptr;
};

/**
 * Base class of all protection schemes.
 *
 * Lifecycle: the System constructs the scheme with the shared
 * AddressSpace and core topology, then attaches each core's private
 * TLB hierarchy via attachCore() (core 0 first). Schemes that stamp
 * keys/domains into TLB entries, or keep per-core translation caches
 * (DTTLB/PTLB), hook onCoreAttached(). Multi-core machines also
 * connect the shared ShootdownBus; single-core machines don't, and
 * schemes keep the legacy in-line flush path there.
 */
class ProtectionScheme : public stats::Group
{
  public:
    ProtectionScheme(stats::Group *parent, std::string name,
                     const ProtParams &params, const CoreTopology &topo,
                     const tlb::AddressSpace &space);
    ~ProtectionScheme() override = default;

    /**
     * A devirtualized per-access check entry point. Concrete schemes
     * register a thunk that calls their checkAccess() non-virtually
     * (see fastCheckThunk), letting the batch replay loop skip the
     * vtable dispatch on the hottest call in the simulator.
     */
    using FastCheckFn = CheckResult (*)(ProtectionScheme &,
                                        const AccessContext &);

    /** The registered fast check, or nullptr (callers fall back to
     *  the virtual checkAccess()). */
    FastCheckFn fastCheck() const { return fastCheck_; }

    /**
     * True when checkAccess() unconditionally allows at zero cost
     * (no-protection/lowerbound). The batch replay loop skips the
     * check — and the AccessContext construction — entirely.
     */
    bool alwaysAllows() const { return alwaysAllows_; }

    /** Scheme display name. */
    const std::string &schemeLabel() const { return label_; }

    const ProtParams &params() const { return params_; }

    /**
     * The scheme's statistics subtree. Every scheme IS a
     * stats::Group; this accessor is the uniform way consumers reach
     * it (arch::makeScheme attaches it under the owning System, so
     * the subtree shows up in the System's dumps automatically).
     */
    stats::Group &statsGroup() { return *this; }
    const stats::Group &statsGroup() const { return *this; }

    /**
     * Connect the event flight recorder (not owned; typically the
     * owning System's ring). Schemes post key evictions, shootdowns
     * and buffer refills to it; a null ring disables posting.
     */
    void setEventRing(trace::EventRing *ring) { events_ = ring; }

    /**
     * Connect core @p core's private data TLB (not owned). Core 0's
     * TLB doubles as the legacy single-TLB alias used by every
     * single-core path. Calls onCoreAttached() so schemes can install
     * their fill policy and build per-core structures.
     */
    void attachCore(CoreId core, tlb::TlbHierarchy *tlb);

    /**
     * Connect the shared shootdown fabric (multi-core machines only;
     * not owned). Schemes that evict keys route their charged
     * invalidations through it when present.
     */
    void setShootdownBus(ShootdownBus *bus) { bus_ = bus; }

    /**
     * Tell the scheme which core issues the next calls. The replay
     * scheduler sets this before dispatching each record; single-core
     * replay never calls it (core 0 is the default).
     */
    void setActiveCore(CoreId core) { activeCore_ = core; }

    CoreId activeCore() const { return activeCore_; }

    const CoreTopology &topology() const { return topo_; }

    /**
     * Check one memory access against the domain permissions. Page
     * permission is checked here too (strictest-of-both rule).
     */
    virtual CheckResult checkAccess(const AccessContext &ctx) = 0;

    /**
     * Execute SETPERM (or the scheme's equivalent): set thread
     * @p tid's permission for @p domain. Returns the cycles consumed.
     */
    virtual Cycles setPerm(ThreadId tid, DomainId domain, Perm perm) = 0;

    /**
     * Execute a raw WRPKRU (legacy MPK PKRU programming). Key-based
     * schemes override to actually update PKRU state; the default
     * charges the instruction cost only.
     */
    virtual Cycles wrpkruRaw(ThreadId tid, ProtKey key, Perm perm);

    /**
     * Attach notification: domain @p domain was mapped at
     * [base, base+size) (already present in the AddressSpace).
     * Returns cycles charged to the attach syscall path.
     */
    virtual Cycles attach(ThreadId tid, DomainId domain, Addr base,
                          Addr size, Perm max_perm) = 0;

    /** Detach notification. */
    virtual Cycles detach(ThreadId tid, DomainId domain) = 0;

    /** The core context-switched from @p from to @p to. */
    virtual Cycles contextSwitch(ThreadId from, ThreadId to) = 0;

    /**
     * Query the *effective* permission thread @p tid currently holds
     * for @p domain (functional oracle used by tests and the PMO
     * runtime).
     */
    virtual Perm effectivePerm(ThreadId tid, DomainId domain) const = 0;

    /**
     * Per-domain attribution: which PMOs the scheme's protection work
     * (fills, evictions, shootdowns, SETPERMs) landed on. Reports
     * rank this into the "hot domains" table.
     */
    const DomainProfile &domainProfile() const { return profile_; }

    /**
     * Add the scheme's counters to the System's timeline sampler.
     * The base registers the cross-scheme event counters (key
     * evictions, shootdowns, shootdown pages, permission changes);
     * schemes with private buffers override to add their miss
     * counters (DTTLB/PTLB) and must call the base first.
     */
    virtual void registerTimelineTracks(stats::TimeSeries &timeline);

    /**
     * Defer the scheme's hot-path counters (per-access cycle buckets,
     * per-core buffer hit/miss counts) into packed locals. Schemes
     * with private buffers (DTTLB/PTLB) override to cascade, calling
     * the base. Disabling flushes.
     */
    virtual void setStatsDeferred(bool defer);

    /** Flush deferred counters into the stats tree now. */
    virtual void flushDeferredStats();

    // ---- Table VII overhead buckets (cycles) ----
    stats::Scalar cycPermissionChange; ///< SETPERM/WRPKRU instructions.
    stats::Scalar cycEntryChange;      ///< DTTLB/PTLB entry operations.
    stats::Scalar cycTableMiss;        ///< DTT walks / PT lookups.
    stats::Scalar cycTlbInvalidation;  ///< Shootdown costs (direct).
    stats::Scalar cycAccessLatency;    ///< Per-access adders (PTLB).
    stats::Scalar cycSoftware;         ///< Syscall/PTE-rewrite (libmpk).

    // ---- event counters ----
    stats::Scalar permChanges;     ///< SETPERM/WRPKRU executed.
    stats::Scalar setperms;        ///< SETPERM instructions executed.
    stats::Scalar wrpkrus;         ///< Raw WRPKRU instructions executed.
    stats::Scalar keyRemaps;       ///< Domain->key (re)assignments.
    stats::Scalar keyEvictions;    ///< Victim domains that lost a key.
    stats::Scalar shootdowns;      ///< Ranged TLB invalidations issued.
    stats::Scalar shootdownPages;  ///< TLB entries shot down by them.
    stats::Scalar protectionFaults; ///< Accesses denied.

  protected:
    /** Register the devirtualized check (from a scheme constructor). */
    void setFastCheck(FastCheckFn fn) { fastCheck_ = fn; }

    /** Declare that checkAccess() always allows at zero cost. */
    void setAlwaysAllows() { alwaysAllows_ = true; }

    /** Helper: combine page and domain permission, build the result. */
    CheckResult judge(const AccessContext &ctx, Perm domain_perm,
                      Cycles extra) const;

    /**
     * Charge one SETPERM instruction: bumps permChanges/setperms,
     * attributes the WRPKRU latency to the permission-change bucket
     * and returns it. Every scheme's setPerm starts here.
     */
    Cycles chargeSetPerm();

    /** As chargeSetPerm(), for a raw WRPKRU. */
    Cycles chargeWrpkru();

    /** Charge @p c to the access-latency bucket (deferral-aware). */
    void chargeAccessLatencyCyc(Cycles c)
    {
        if (statsDeferred_)
            pendCycAccessLatency_ += c;
        else
            cycAccessLatency += c;
    }

    /** Charge @p c to the table-miss bucket (deferral-aware). */
    void chargeTableMissCyc(Cycles c)
    {
        if (statsDeferred_)
            pendCycTableMiss_ += c;
        else
            cycTableMiss += c;
    }

    /** True while hot counters are being deferred. */
    bool statsDeferred() const { return statsDeferred_; }

    /**
     * Hook for attachCore(): @p tlb is core @p core's hierarchy,
     * already recorded in coreTlbs_ (and tlb_ for core 0). Default
     * does nothing.
     */
    virtual void onCoreAttached(CoreId core, tlb::TlbHierarchy *tlb);

    /** Core @p core's TLB hierarchy (fatal if unattached). */
    tlb::TlbHierarchy &tlbAt(CoreId core) const;

    /** Number of cores whose TLBs have been attached. */
    unsigned
    numAttachedCores() const
    {
        return static_cast<unsigned>(coreTlbs_.size());
    }

    /**
     * Functionally flush [base, base+size) from EVERY core's TLB,
     * uncharged — the munmap/detach coherence path, not a modelled
     * shootdown. Returns the total entries flushed.
     */
    std::uint64_t flushRangeAllCores(Addr base, Addr size);

    /** As flushRangeAllCores(), for a protection key. */
    void flushKeyAllCores(ProtKey key);

    /** Post to the event ring (no-op when none is connected). */
    void
    postEvent(trace::EventKind kind, ThreadId tid,
              std::uint32_t arg = 0, std::uint64_t value = 0)
    {
        if (events_)
            events_->post(kind, tid, arg, value);
    }

    ProtParams params_;
    CoreTopology topo_;
    const tlb::AddressSpace &space_;
    /** Core 0's TLB — the alias every single-core path uses. */
    tlb::TlbHierarchy *tlb_ = nullptr;
    /** All attached cores' TLBs, indexed by CoreId. */
    std::vector<tlb::TlbHierarchy *> coreTlbs_;
    ShootdownBus *bus_ = nullptr;
    CoreId activeCore_ = 0;
    trace::EventRing *events_ = nullptr;
    DomainProfile profile_;

    /** Deferred-cycle accumulators (see setStatsDeferred). */
    bool statsDeferred_ = false;
    std::uint64_t pendCycAccessLatency_ = 0;
    std::uint64_t pendCycTableMiss_ = 0;

  private:
    std::string label_;
    FastCheckFn fastCheck_ = nullptr;
    bool alwaysAllows_ = false;
};

/**
 * The canonical fast-check thunk: forwards to @p SchemeT's
 * checkAccess with a qualified (non-virtual) call, so the check body
 * inlines into the thunk. Scheme constructors pass
 * `setFastCheck(&fastCheckThunk<MyScheme>)`.
 */
template <typename SchemeT>
CheckResult
fastCheckThunk(ProtectionScheme &self, const AccessContext &ctx)
{
    return static_cast<SchemeT &>(self).SchemeT::checkAccess(ctx);
}

/** The unprotected baseline: every access allowed, zero cost. */
class NoProtectionScheme : public ProtectionScheme
{
  public:
    NoProtectionScheme(stats::Group *parent, const ProtParams &params,
                       const CoreTopology &topo,
                       const tlb::AddressSpace &space)
        : ProtectionScheme(parent, "none", params, topo, space)
    {
        setAlwaysAllows();
    }

    CheckResult
    checkAccess(const AccessContext &) override
    {
        return {};
    }

    Cycles setPerm(ThreadId, DomainId, Perm) override { return 0; }
    Cycles attach(ThreadId, DomainId, Addr, Addr, Perm) override
    {
        return 0;
    }
    Cycles detach(ThreadId, DomainId) override { return 0; }
    Cycles contextSwitch(ThreadId, ThreadId) override { return 0; }

    Perm
    effectivePerm(ThreadId, DomainId) const override
    {
        return Perm::ReadWrite;
    }
};

/**
 * The ideal lowerbound: permission-change instructions cost their
 * WRPKRU latency but protection structures are free and every access
 * is (correctly, by construction of the workloads) allowed.
 */
class LowerboundScheme : public ProtectionScheme
{
  public:
    LowerboundScheme(stats::Group *parent, const ProtParams &params,
                     const CoreTopology &topo,
                     const tlb::AddressSpace &space)
        : ProtectionScheme(parent, "lowerbound", params, topo, space)
    {
        setAlwaysAllows();
    }

    CheckResult
    checkAccess(const AccessContext &) override
    {
        return {};
    }

    Cycles
    setPerm(ThreadId, DomainId, Perm) override
    {
        return chargeSetPerm();
    }

    Cycles attach(ThreadId, DomainId, Addr, Addr, Perm) override
    {
        return 0;
    }
    Cycles detach(ThreadId, DomainId) override { return 0; }
    Cycles contextSwitch(ThreadId, ThreadId) override { return 0; }

    Perm
    effectivePerm(ThreadId, DomainId) const override
    {
        return Perm::ReadWrite;
    }
};

} // namespace pmodv::arch

#endif // PMODV_ARCH_SCHEME_HH
