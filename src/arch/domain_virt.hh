/**
 * @file
 * The paper's second proposed design: **hardware domain
 * virtualization**. Protection keys are abandoned entirely:
 *
 *  - each TLB entry carries a 10-bit domain id, filled from the
 *    Domain Range Table (DRT), a VA-indexed radix tree walked in
 *    parallel with the page walk;
 *  - per-(domain, thread) permissions live in the Permission Table
 *    (PT), cached in the 16-entry PTLB;
 *  - SETPERM completes entirely inside the PTLB;
 *  - key remapping — and therefore TLB shootdown — never happens.
 */

#ifndef PMODV_ARCH_DOMAIN_VIRT_HH
#define PMODV_ARCH_DOMAIN_VIRT_HH

#include <memory>
#include <unordered_map>

#include "arch/ptlb.hh"
#include "arch/radix.hh"
#include "arch/scheme.hh"

namespace pmodv::arch
{

/** Per-domain payload in DRT root entries (bounds for detach). */
struct DrtInfo
{
    DomainId domain = kNullDomain;
    Addr base = 0;
    Addr size = 0;
};

/**
 * The OS-managed Permission Table: (domain, thread) -> 2-bit
 * permission. Plain cacheable memory in the paper; modelled
 * functionally with a footprint estimate for Table VIII.
 */
class PermissionTable
{
  public:
    Perm
    get(DomainId domain, ThreadId tid) const
    {
        auto d = perms_.find(domain);
        if (d == perms_.end())
            return Perm::None;
        auto t = d->second.find(tid);
        return t == d->second.end() ? Perm::None : t->second;
    }

    void set(DomainId domain, ThreadId tid, Perm perm)
    {
        perms_[domain][tid] = perm;
    }

    void dropDomain(DomainId domain) { perms_.erase(domain); }

    std::size_t numDomains() const { return perms_.size(); }

  private:
    std::unordered_map<DomainId, std::unordered_map<ThreadId, Perm>>
        perms_;
};

/** Hardware domain virtualization. */
class DomainVirtScheme : public ProtectionScheme
{
  public:
    DomainVirtScheme(stats::Group *parent, const ProtParams &params,
                     const CoreTopology &topo,
                     const tlb::AddressSpace &space);

    void registerTimelineTracks(stats::TimeSeries &timeline) override;

    void setStatsDeferred(bool defer) override;
    void flushDeferredStats() override;

    CheckResult checkAccess(const AccessContext &ctx) override;
    Cycles setPerm(ThreadId tid, DomainId domain, Perm perm) override;
    Cycles attach(ThreadId tid, DomainId domain, Addr base, Addr size,
                  Perm max_perm) override;
    Cycles detach(ThreadId tid, DomainId domain) override;
    Cycles contextSwitch(ThreadId from, ThreadId to) override;
    Perm effectivePerm(ThreadId tid, DomainId domain) const override;

    /** Core 0's PTLB (the only one on single-core machines). */
    Ptlb &ptlb() { return *ptlbs_[0]; }
    /** Core @p core's private PTLB. */
    Ptlb &ptlbAt(CoreId core) { return *ptlbs_[core]; }
    const PermissionTable &pt() const { return pt_; }
    const VaRadixTree<DrtInfo> &drt() const { return drt_; }

    /** DRT memory footprint in bytes (Table VIII model). */
    std::uint64_t drtMemoryBytes() const;

    stats::Scalar drtWalks;
    stats::Scalar ptlbWritebacks;
    stats::Scalar contextSwitches;

  protected:
    void onCoreAttached(CoreId core, tlb::TlbHierarchy *tlb) override;

  private:
    class FillPolicy : public tlb::TlbFillPolicy
    {
      public:
        explicit FillPolicy(DomainVirtScheme &owner) : owner_(owner) {}
        Cycles fill(ThreadId tid, Addr va, const tlb::Region *region,
                    tlb::TlbEntry &entry) override;

      private:
        DomainVirtScheme &owner_;
    };

    /**
     * Look the domain up in the PTLB, filling from the PT on a miss.
     * Returns the permission and accumulates cycles into @p cycles.
     */
    Perm lookupPerm(ThreadId tid, DomainId domain, Cycles &cycles);

    /** Write @p entry's permission back to the PT. */
    void writeback(ThreadId tid, const PtlbEntry &entry);

    std::unique_ptr<FillPolicy> fillPolicyStorage_;
    VaRadixTree<DrtInfo> drt_;
    std::unordered_map<DomainId, std::shared_ptr<DrtInfo>> domains_;
    PermissionTable pt_;
    /** Per-core PTLBs; [0] exists from construction. */
    std::vector<std::unique_ptr<Ptlb>> ptlbs_;
    /** Per core: the thread whose permissions its PTLB caches. */
    std::vector<ThreadId> curTid_;
    /** Deferred DRT-walk count (see setStatsDeferred). */
    std::uint64_t pendDrtWalks_ = 0;
};

} // namespace pmodv::arch

#endif // PMODV_ARCH_DOMAIN_VIRT_HH
