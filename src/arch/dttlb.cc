#include "arch/dttlb.hh"

#include "common/logging.hh"

namespace pmodv::arch
{

Dttlb::Dttlb(stats::Group *parent, unsigned entries, std::string name)
    : stats::Group(parent, std::move(name)),
      hits(this, "hits", "VA lookups that matched"),
      misses(this, "misses", "VA lookups that missed"),
      evictions(this, "evictions", "slots evicted by capacity"),
      missLatency(this, "miss_latency",
                  "cycles spent servicing each DTTLB miss"),
      slots_(entries), plru_(entries)
{
    fatal_if(entries == 0, "DTTLB needs at least one entry");
}

DttlbEntry *
Dttlb::lookupVa(Addr va)
{
    for (unsigned i = 0; i < slots_.size(); ++i) {
        if (slots_[i].contains(va)) {
            ++hits;
            plru_.touch(i);
            return &slots_[i];
        }
    }
    ++misses;
    return nullptr;
}

DttlbEntry *
Dttlb::findDomain(DomainId domain)
{
    for (auto &slot : slots_) {
        if (slot.used && slot.domain == domain)
            return &slot;
    }
    return nullptr;
}

DttlbEntry &
Dttlb::insert(const DttlbEntry &entry, DttlbEntry &evicted,
              bool &had_eviction)
{
    had_eviction = false;
    // Reuse the slot already caching this domain, else a free slot,
    // else the pseudo-LRU victim.
    unsigned slot = static_cast<unsigned>(slots_.size());
    for (unsigned i = 0; i < slots_.size(); ++i) {
        if (slots_[i].used && slots_[i].domain == entry.domain) {
            slot = i;
            break;
        }
        if (slot == slots_.size() && !slots_[i].used)
            slot = i;
    }
    if (slot == slots_.size()) {
        slot = plru_.victim();
        evicted = slots_[slot];
        had_eviction = true;
        ++evictions;
    }
    slots_[slot] = entry;
    slots_[slot].used = true;
    plru_.touch(slot);
    return slots_[slot];
}

bool
Dttlb::invalidateDomain(DomainId domain)
{
    for (auto &slot : slots_) {
        if (slot.used && slot.domain == domain) {
            slot = DttlbEntry{};
            return true;
        }
    }
    return false;
}

void
Dttlb::flushAll(std::vector<DttlbEntry> &dirty_out)
{
    for (auto &slot : slots_) {
        if (slot.used && slot.dirty)
            dirty_out.push_back(slot);
        slot = DttlbEntry{};
    }
    plru_.reset();
}

unsigned
Dttlb::usedCount() const
{
    unsigned n = 0;
    for (const auto &slot : slots_) {
        if (slot.used)
            ++n;
    }
    return n;
}

} // namespace pmodv::arch
