#include "arch/dttlb.hh"

#include "common/logging.hh"

namespace pmodv::arch
{

Dttlb::Dttlb(stats::Group *parent, unsigned entries, std::string name)
    : stats::Group(parent, std::move(name)),
      hits(this, "hits", "VA lookups that matched"),
      misses(this, "misses", "VA lookups that missed"),
      evictions(this, "evictions", "slots evicted by capacity"),
      missLatency(this, "miss_latency",
                  "cycles spent servicing each DTTLB miss"),
      slots_(entries), plru_(entries),
      touchLut_(TreePlru::makeTouchLut(entries))
{
    fatal_if(entries == 0, "DTTLB needs at least one entry");
}

DttlbEntry *
Dttlb::lookupVa(Addr va)
{
    // L0 fast path: consecutive accesses inside the same PMO range
    // re-verify the memoized slot instead of scanning the CAM.
    if (l0Gen_ == gen_ && slots_[l0Slot_].contains(va)) {
        ++l0Hits_;
        if (defer_)
            ++pend_.hits;
        else
            ++hits;
        touchSlot(l0Slot_);
        return &slots_[l0Slot_];
    }

    for (unsigned i = 0; i < slots_.size(); ++i) {
        if (slots_[i].contains(va)) {
            if (defer_)
                ++pend_.hits;
            else
                ++hits;
            touchSlot(i);
            l0Gen_ = gen_;
            l0Slot_ = i;
            return &slots_[i];
        }
    }
    if (defer_)
        ++pend_.misses;
    else
        ++misses;
    return nullptr;
}

DttlbEntry *
Dttlb::findDomain(DomainId domain)
{
    for (auto &slot : slots_) {
        if (slot.used && slot.domain == domain)
            return &slot;
    }
    return nullptr;
}

DttlbEntry &
Dttlb::insert(const DttlbEntry &entry, DttlbEntry &evicted,
              bool &had_eviction)
{
    had_eviction = false;
    // Reuse the slot already caching this domain, else a free slot,
    // else the pseudo-LRU victim.
    unsigned slot = static_cast<unsigned>(slots_.size());
    for (unsigned i = 0; i < slots_.size(); ++i) {
        if (slots_[i].used && slots_[i].domain == entry.domain) {
            slot = i;
            break;
        }
        if (slot == slots_.size() && !slots_[i].used)
            slot = i;
    }
    if (slot == slots_.size()) {
        slot = plru_.victim();
        evicted = slots_[slot];
        had_eviction = true;
        if (defer_)
            ++pend_.evictions;
        else
            ++evictions;
    }
    slots_[slot] = entry;
    slots_[slot].used = true;
    touchSlot(slot);
    ++gen_;
    l0Gen_ = gen_;
    l0Slot_ = slot;
    return slots_[slot];
}

bool
Dttlb::invalidateDomain(DomainId domain)
{
    for (auto &slot : slots_) {
        if (slot.used && slot.domain == domain) {
            slot = DttlbEntry{};
            ++gen_;
            return true;
        }
    }
    return false;
}

void
Dttlb::flushAll(std::vector<DttlbEntry> &dirty_out)
{
    for (auto &slot : slots_) {
        if (slot.used && slot.dirty)
            dirty_out.push_back(slot);
        slot = DttlbEntry{};
    }
    plru_.reset();
    ++gen_;
}

unsigned
Dttlb::usedCount() const
{
    unsigned n = 0;
    for (const auto &slot : slots_) {
        if (slot.used)
            ++n;
    }
    return n;
}

void
Dttlb::setStatsDeferred(bool defer)
{
    if (!defer && defer_)
        flushDeferredStats();
    defer_ = defer;
}

void
Dttlb::flushDeferredStats()
{
    if (pend_.hits) {
        hits += pend_.hits;
        pend_.hits = 0;
    }
    if (pend_.misses) {
        misses += pend_.misses;
        pend_.misses = 0;
    }
    if (pend_.evictions) {
        evictions += pend_.evictions;
        pend_.evictions = 0;
    }
}

} // namespace pmodv::arch
