#include "arch/shootdown_bus.hh"

#include "common/logging.hh"
#include "tlb/hierarchy.hh"

namespace pmodv::arch
{

void
CoreTopology::validate() const
{
    fatal_if(numCores == 0,
             "topology.numCores must be at least 1 (got 0); a machine "
             "needs a core to replay on");
    fatal_if(numCores > kMaxCores,
             "topology.numCores %u exceeds the supported maximum of "
             "%u cores",
             numCores, kMaxCores);
}

ShootdownBus::ShootdownBus(stats::Group *parent,
                           const CoreTopology &topo)
    : stats::Group(parent, "shootdown_bus"),
      broadcasts(this, "broadcasts",
                 "eviction shootdown broadcasts issued"),
      ipisSent(this, "ipis_sent", "remote cores interrupted"),
      ipisResponded(this, "ipis_responded",
                    "remote cores that held stale entries"),
      ipisFiltered(this, "ipis_filtered",
                   "remote cores with nothing to flush"),
      pagesInvalidated(this, "pages_invalidated",
                       "stale pages flushed machine-wide"),
      topo_(topo), cores_(topo.numCores)
{
    topo.validate();
}

void
ShootdownBus::attachCore(CoreId core, tlb::TlbHierarchy *tlb,
                         stats::Scalar *responded,
                         stats::Scalar *filtered)
{
    fatal_if(core >= cores_.size(),
             "attachCore: core %u out of range (topology has %zu)",
             core, cores_.size());
    fatal_if(cores_[core].tlb != nullptr,
             "attachCore: core %u attached twice", core);
    cores_[core] = CorePort{tlb, responded, filtered};
}

ShootdownResult
ShootdownBus::broadcast(CoreId initiator, ThreadId tid,
                        std::span<const ShootdownRange> ranges)
{
    fatal_if(initiator >= cores_.size() || !cores_[initiator].tlb,
             "broadcast from unattached core %u", initiator);
    ++broadcasts;

    ShootdownResult result;
    // The initiator's own ranged INVLPG: always paid, whether or not
    // its TLB held anything — this is exactly the single-core cost,
    // so a one-core bus degenerates to the legacy charge.
    result.cycles = topo_.tlbInvalidationCycles;
    for (const ShootdownRange &r : ranges) {
        result.pages +=
            cores_[initiator].tlb->flushRange(r.base, r.size);
    }

    for (CoreId core = 0; core < cores_.size(); ++core) {
        if (core == initiator || !cores_[core].tlb)
            continue;
        ++ipisSent;
        std::uint64_t flushed = 0;
        for (const ShootdownRange &r : ranges)
            flushed += cores_[core].tlb->flushRange(r.base, r.size);
        result.pages += flushed;
        if (flushed > 0) {
            ++ipisResponded;
            ++result.responders;
            result.cycles += topo_.tlbInvalidationCycles;
            if (cores_[core].responded)
                ++*cores_[core].responded;
            if (events_)
                events_->post(trace::EventKind::Ipi, tid, core,
                              flushed);
        } else {
            ++ipisFiltered;
            if (cores_[core].filtered)
                ++*cores_[core].filtered;
        }
    }
    pagesInvalidated += static_cast<double>(result.pages);
    return result;
}

} // namespace pmodv::arch
