#include "arch/mpk_virt.hh"

#include "arch/shootdown_bus.hh"
#include "common/logging.hh"
#include "stats/timeseries.hh"

namespace pmodv::arch
{

MpkVirtScheme::MpkVirtScheme(stats::Group *parent,
                             const ProtParams &params,
                             const CoreTopology &topo,
                             const tlb::AddressSpace &space)
    : ProtectionScheme(parent, "mpk_virt", params, topo, space),
      dttWalks(this, "dtt_walks", "DTT walks on DTTLB misses"),
      dttlbWritebacks(this, "dttlb_writebacks",
                      "dirty DTTLB entries written back to the DTT"),
      contextSwitches(this, "context_switches",
                      "context switches processed")
{
    dttlbs_.push_back(std::make_unique<Dttlb>(this,
                                              params_.dttlbEntries));
    keyHolder_.fill(kNullDomain);
    keyStamp_.fill(0);
    setFastCheck(&fastCheckThunk<MpkVirtScheme>);
}

void
MpkVirtScheme::registerTimelineTracks(stats::TimeSeries &timeline)
{
    ProtectionScheme::registerTimelineTracks(timeline);
    timeline.track(dttlbs_[0]->misses, "dttlb_misses");
    timeline.track(dttWalks, "dtt_walks");
}

void
MpkVirtScheme::setStatsDeferred(bool defer)
{
    ProtectionScheme::setStatsDeferred(defer);
    if (!defer && pendDttWalks_) {
        dttWalks += pendDttWalks_;
        pendDttWalks_ = 0;
    }
    for (auto &d : dttlbs_)
        d->setStatsDeferred(defer);
}

void
MpkVirtScheme::flushDeferredStats()
{
    ProtectionScheme::flushDeferredStats();
    if (pendDttWalks_) {
        dttWalks += pendDttWalks_;
        pendDttWalks_ = 0;
    }
    for (auto &d : dttlbs_)
        d->flushDeferredStats();
}

void
MpkVirtScheme::onCoreAttached(CoreId core, tlb::TlbHierarchy *tlb)
{
    if (!fillPolicyStorage_)
        fillPolicyStorage_ = std::make_unique<FillPolicy>(*this);
    tlb->setFillPolicy(fillPolicyStorage_.get());
    // Core 0's DTTLB is built in the constructor ("dttlb"); each
    // further core gets a private one.
    while (dttlbs_.size() <= core) {
        dttlbs_.push_back(std::make_unique<Dttlb>(
            this, params_.dttlbEntries,
            "dttlb_core" + std::to_string(dttlbs_.size())));
    }
}

void
MpkVirtScheme::invalidateDomainAllDttlbs(DomainId domain)
{
    for (auto &d : dttlbs_)
        d->invalidateDomain(domain);
}

Perm
MpkVirtScheme::permOf(const DttInfo &info, ThreadId tid) const
{
    auto it = info.perms.find(tid);
    return it == info.perms.end() ? Perm::None : it->second;
}

void
MpkVirtScheme::touchKey(ProtKey key)
{
    keyStamp_[key] = ++keyClock_;
}

ProtKey
MpkVirtScheme::victimKey() const
{
    ProtKey best = kInvalidKey;
    for (ProtKey k = 1; k < kNumProtKeys; ++k) {
        if (keyHolder_[k] == kNullDomain)
            continue;
        if (best == kInvalidKey || keyStamp_[k] < keyStamp_[best])
            best = k;
    }
    panic_if(best == kInvalidKey,
             "victimKey() called with no key holders");
    return best;
}

void
MpkVirtScheme::bindKey(ThreadId tid, DttInfo &info, ProtKey key)
{
    info.key = key;
    keyHolder_[key] = info.domain;
    touchKey(key);
    if (topo_.numCores > 1) {
        // Threads on other cores keep running without a context
        // switch, so the remap must be made globally coherent now:
        // the key's old grants are wiped and every thread's stored
        // permission for the new holder is reloaded from the DTT.
        pkrus_.resetKey(key);
        for (const auto &[t, p] : info.perms)
            pkrus_.forThread(t).setPerm(key, p);
    } else {
        // PKRU of the running thread reflects the new domain
        // immediately; other threads reconstruct on their next
        // context switch in.
        pkrus_.forThread(tid).setPerm(key, permOf(info, tid));
    }
    ++keyRemaps;
}

Cycles
MpkVirtScheme::cacheInDttlb(DttInfo &info)
{
    DttlbEntry entry;
    entry.used = true;
    entry.base = info.base;
    entry.size = info.size;
    entry.domain = info.domain;
    entry.key = info.key == kInvalidKey ? kNullKey : info.key;
    entry.valid = info.key != kInvalidKey;
    entry.dirty = true;
    // Host-perf memo: a later DTTLB hit reaches the payload without
    // the domain-map lookup. Invalidation paths drop the whole entry,
    // so the pointer can never outlive the DttInfo it names.
    entry.payload = &info;

    DttlbEntry evicted;
    bool had_eviction = false;
    dttlbs_[activeCore_]->insert(entry, evicted, had_eviction);

    Cycles cycles = params_.dttlbEntryOpCycles;
    cycEntryChange += static_cast<double>(params_.dttlbEntryOpCycles);
    if (had_eviction && evicted.dirty) {
        // Lazy DTT update: the dirty mapping is written back now.
        ++dttlbWritebacks;
        cycles += params_.dttlbEntryOpCycles;
        cycEntryChange += static_cast<double>(params_.dttlbEntryOpCycles);
    }
    return cycles;
}

Cycles
MpkVirtScheme::resolveKey(ThreadId tid, DttInfo &info)
{
    Cycles cycles = 0;

    if (info.key != kInvalidKey) {
        touchKey(info.key);
        return cycles;
    }

    // Check the free-key structure.
    cycles += params_.freeKeyCheckCycles;
    cycEntryChange += static_cast<double>(params_.freeKeyCheckCycles);
    ProtKey key = keyAlloc_.alloc();
    if (key == kInvalidKey) {
        // No free key: reassign the LRU victim's key.
        const ProtKey victim = victimKey();
        const DomainId victim_domain = keyHolder_[victim];
        auto vit = domains_.find(victim_domain);
        panic_if(vit == domains_.end(),
                 "victim domain %u has no DTT payload", victim_domain);
        DttInfo &vinfo = *vit->second;

        // Unmap the victim: DTT payload updated, DTTLB entry marked
        // invalid + dirty.
        vinfo.key = kInvalidKey;
        keyHolder_[victim] = kNullDomain;
        for (auto &d : dttlbs_) {
            if (DttlbEntry *ve = d->findDomain(victim_domain)) {
                ve->valid = false;
                ve->key = kNullKey;
                ve->dirty = true;
            }
        }
        cycles += params_.dttlbEntryOpCycles;
        cycEntryChange += static_cast<double>(params_.dttlbEntryOpCycles);

        // Ranged TLB shootdown of the victim's pages, so no stale
        // VA->key mapping survives. With a shootdown bus (multi-core
        // replay) the broadcast charges the initiator plus each
        // responding core that actually held stale entries; without
        // one (single-core) the legacy flat cost applies.
        ++keyEvictions;
        ++shootdowns;
        Cycles inval = 0;
        std::uint64_t pages = 0;
        if (bus_) {
            const ShootdownResult res = bus_->broadcast(
                activeCore_, tid, vinfo.base, vinfo.size);
            inval = res.cycles;
            pages = res.pages;
        } else {
            inval = topo_.tlbInvalidationCycles;
            if (tlb_)
                pages = tlb_->flushRange(vinfo.base, vinfo.size);
        }
        cycles += inval;
        cycTlbInvalidation += static_cast<double>(inval);
        shootdownPages += static_cast<double>(pages);
        profile_.eviction(victim_domain, pages, activeCore_);
        postEvent(trace::EventKind::KeyEviction, tid, victim_domain,
                  victim);
        postEvent(trace::EventKind::Shootdown, tid, victim_domain,
                  pages);

        key = victim;
    }

    bindKey(tid, info, key);
    cycles += params_.pkruUpdateCycles;
    cycEntryChange += static_cast<double>(params_.pkruUpdateCycles);
    return cycles;
}

Cycles
MpkVirtScheme::FillPolicy::fill(ThreadId tid, Addr va,
                                const tlb::Region *region,
                                tlb::TlbEntry &entry)
{
    if (!region || region->domain == kNullDomain) {
        entry.key = kNullKey;
        return 0;
    }

    MpkVirtScheme &s = owner_;
    Cycles cycles = 0;

    Dttlb &dttlb = *s.dttlbs_[s.activeCore_];
    DttInfo *info = nullptr;
    if (DttlbEntry *hit = dttlb.lookupVa(va)) {
        // DTTLB hit: its 1-cycle CAM lookup overlaps the page walk,
        // so no extra latency is charged (DESIGN.md §5).
        info = static_cast<DttInfo *>(hit->payload);
        if (!info) {
            auto it = s.domains_.find(hit->domain);
            panic_if(it == s.domains_.end(),
                     "DTTLB caches unknown domain");
            info = it->second.get();
            hit->payload = info;
        }
    } else {
        // DTTLB miss: walk the DTT (Table II: 30 cycles).
        if (s.statsDeferred())
            ++s.pendDttWalks_;
        else
            ++s.dttWalks;
        cycles += s.params_.dttWalkCycles;
        s.profile_.fillMiss(region->domain);
        s.chargeTableMissCyc(s.params_.dttWalkCycles);
        dttlb.missLatency.sample(s.params_.dttWalkCycles);
        auto walk = s.dtt_.walk(va);
        panic_if(!walk.found,
                 "mapped PMO region missing from the DTT");
        info = walk.payload;
        s.postEvent(trace::EventKind::DttlbRefill, tid, info->domain,
                    s.params_.dttWalkCycles);
    }

    cycles += s.resolveKey(tid, *info);
    cycles += s.cacheInDttlb(*info);

    entry.key = info->key == kInvalidKey ? kNullKey : info->key;
    return cycles;
}

CheckResult
MpkVirtScheme::checkAccess(const AccessContext &ctx)
{
    const ProtKey key = ctx.entry->key;
    Perm domain_perm = Perm::ReadWrite; // Domainless: page perm only.
    if (key != kNullKey) {
        touchKey(key);
        if (keyHolder_[key] != kNullDomain)
            profile_.access(keyHolder_[key], activeCore_);
        domain_perm = pkrus_.forThread(ctx.tid).permFor(key);
    }
    CheckResult res = judge(ctx, domain_perm, 0);
    if (!res.allowed)
        ++protectionFaults;
    return res;
}

Cycles
MpkVirtScheme::setPerm(ThreadId tid, DomainId domain, Perm perm)
{
    perm = permNormalizeHw(perm);
    Cycles cycles = chargeSetPerm();

    auto it = domains_.find(domain);
    if (it == domains_.end())
        return cycles; // SETPERM on an unattached domain: no-op.

    profile_.setPerm(domain);
    DttInfo &info = *it->second;
    info.perms[tid] = perm;

    // The DTTLB entry (if cached) is invalidated so the next fill
    // re-reads the DTT, and a key-holding domain is reflected in PKRU
    // immediately (or TLB-hit accesses would use stale permission).
    // Both micro-ops complete within SETPERM's own 27-cycle latency —
    // this is what makes the single-PMO case perform *identically* to
    // stock MPK (paper §VI-A).
    invalidateDomainAllDttlbs(domain);
    if (info.key != kInvalidKey)
        pkrus_.forThread(tid).setPerm(info.key, perm);
    return cycles;
}

Cycles
MpkVirtScheme::attach(ThreadId, DomainId domain, Addr base, Addr size,
                      Perm)
{
    panic_if(domains_.count(domain), "domain %u attached twice", domain);
    auto info = std::make_shared<DttInfo>();
    info->domain = domain;
    info->base = base;
    info->size = size;
    domains_[domain] = info;
    dtt_.insert(base, size, domain, info);
    return 0;
}

Cycles
MpkVirtScheme::detach(ThreadId, DomainId domain)
{
    auto it = domains_.find(domain);
    if (it == domains_.end())
        return 0;
    DttInfo &info = *it->second;
    if (info.key != kInvalidKey) {
        keyHolder_[info.key] = kNullDomain;
        keyAlloc_.free(info.key);
        // The munmap behind detach invalidates every core's stale
        // translations; functional, so no IPI cost is charged.
        flushRangeAllCores(info.base, info.size);
    }
    invalidateDomainAllDttlbs(domain);
    dtt_.remove(domain);
    domains_.erase(it);
    return 0;
}

Cycles
MpkVirtScheme::contextSwitch(ThreadId, ThreadId to)
{
    ++contextSwitches;
    currentThread_ = to;
    Cycles cycles = 0;

    // Dirty DTTLB entries are written back to the DTT, then the
    // switching core's (thread-specific) DTTLB is flushed.
    std::vector<DttlbEntry> dirty;
    dttlbs_[activeCore_]->flushAll(dirty);
    for (const DttlbEntry &e : dirty) {
        (void)e; // DTT payloads are kept in sync eagerly; charge only.
        ++dttlbWritebacks;
        cycles += params_.contextSwitchWritebackCycles;
        cycEntryChange +=
            static_cast<double>(params_.contextSwitchWritebackCycles);
    }

    // Reconstruct the incoming thread's PKRU from the DTT: for every
    // key-holding domain, load the domain's permission for `to`.
    Pkru &pkru = pkrus_.forThread(to);
    for (ProtKey k = 1; k < kNumProtKeys; ++k) {
        if (keyHolder_[k] == kNullDomain)
            continue;
        auto it = domains_.find(keyHolder_[k]);
        if (it != domains_.end())
            pkru.setPerm(k, permOf(*it->second, to));
    }
    return cycles;
}

Perm
MpkVirtScheme::effectivePerm(ThreadId tid, DomainId domain) const
{
    auto it = domains_.find(domain);
    if (it == domains_.end())
        return Perm::ReadWrite; // Not a domain: page permission rules.
    return permOf(*it->second, tid);
}

DomainId
MpkVirtScheme::domainOfKey(ProtKey key) const
{
    return key < kNumProtKeys ? keyHolder_[key] : kNullDomain;
}

ProtKey
MpkVirtScheme::keyOf(DomainId domain) const
{
    auto it = domains_.find(domain);
    return it == domains_.end() ? kInvalidKey : it->second->key;
}

std::uint64_t
MpkVirtScheme::dttMemoryBytes() const
{
    // Each radix node is 512 slots x 8 bytes, as in a page table.
    return dtt_.nodeCount() * kRadixFanout * 8;
}

} // namespace pmodv::arch
