/**
 * @file
 * Factory for protection schemes.
 */

#ifndef PMODV_ARCH_FACTORY_HH
#define PMODV_ARCH_FACTORY_HH

#include <memory>

#include "arch/scheme.hh"

namespace pmodv::arch
{

/** Instantiate the scheme @p kind under @p parent. */
std::unique_ptr<ProtectionScheme>
makeScheme(SchemeKind kind, stats::Group *parent,
           const ProtParams &params, const CoreTopology &topo,
           const tlb::AddressSpace &space);

} // namespace pmodv::arch

#endif // PMODV_ARCH_FACTORY_HH
