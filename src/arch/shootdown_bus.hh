/**
 * @file
 * The cross-core TLB shootdown bus.
 *
 * With more than one core, a key eviction (mpk_virt) or pkey_mprotect
 * remap (libmpk) can no longer invalidate "the TLB" — each core owns
 * a private TLB hierarchy, and the initiating core must broadcast the
 * stale ranges as inter-processor interrupts. The bus models the cost
 * side of that protocol the way libmpk describes it: every core is
 * interrupted, but only cores *actually holding stale entries* pay
 * the ranged-invalidation cost; the rest acknowledge and return
 * (filtered responses).
 *
 * The bus is shared cross-core state owned by core::System and is
 * only constructed for multi-core topologies — single-core replay
 * keeps the legacy in-line flush path, bit-identical to the
 * pre-topology model. domain_virt never touches the bus: its PT/PTLB
 * permissions are not cached in the address TLBs, which is the
 * paper's central cost asymmetry.
 */

#ifndef PMODV_ARCH_SHOOTDOWN_BUS_HH
#define PMODV_ARCH_SHOOTDOWN_BUS_HH

#include <span>
#include <vector>

#include "arch/params.hh"
#include "common/types.hh"
#include "stats/stats.hh"
#include "trace/event_ring.hh"

namespace pmodv::tlb
{
class TlbHierarchy;
} // namespace pmodv::tlb

namespace pmodv::arch
{

/** One stale VA range a broadcast must invalidate everywhere. */
struct ShootdownRange
{
    Addr base = 0;
    Addr size = 0;
};

/** What one broadcast cost the machine. */
struct ShootdownResult
{
    /** Cycles charged to the initiating thread (initiator flush +
     *  one invalidation charge per responding core). */
    Cycles cycles = 0;
    /** Stale pages invalidated machine-wide (all cores). */
    std::uint64_t pages = 0;
    /** Remote cores that held stale entries and paid the flush. */
    unsigned responders = 0;
};

/**
 * Broadcast shootdown fabric over the per-core TLB hierarchies.
 * Attach every core once (core::System does this when building a
 * multi-core machine), then schemes call broadcast() on eviction.
 */
class ShootdownBus : public stats::Group
{
  public:
    ShootdownBus(stats::Group *parent, const CoreTopology &topo);

    /**
     * Register core @p core's private TLB. @p responded / @p filtered
     * (may be null) are the per-core response counters bumped when
     * this core answers a broadcast with / without stale entries.
     */
    void attachCore(CoreId core, tlb::TlbHierarchy *tlb,
                    stats::Scalar *responded, stats::Scalar *filtered);

    /** IPI events are posted here (not owned; may be null). */
    void setEventRing(trace::EventRing *ring) { events_ = ring; }

    /**
     * Broadcast the invalidation of @p ranges from @p initiator.
     * The initiator flushes its own TLB and always pays one
     * tlbInvalidationCycles charge (the local ranged INVLPG — exactly
     * the single-core cost). Every remote core flushes the ranges;
     * those that held stale entries add one more charge each and post
     * an EventKind::Ipi (arg = responding core, value = pages).
     */
    ShootdownResult broadcast(CoreId initiator, ThreadId tid,
                              std::span<const ShootdownRange> ranges);

    /** broadcast() of a single contiguous range. */
    ShootdownResult
    broadcast(CoreId initiator, ThreadId tid, Addr base, Addr size)
    {
        const ShootdownRange range{base, size};
        return broadcast(initiator, tid, std::span(&range, 1));
    }

    unsigned numCores() const
    {
        return static_cast<unsigned>(cores_.size());
    }

    stats::Scalar broadcasts;     ///< Eviction broadcasts issued.
    stats::Scalar ipisSent;       ///< Remote cores interrupted.
    stats::Scalar ipisResponded;  ///< Remote cores holding stale entries.
    stats::Scalar ipisFiltered;   ///< Remote cores with nothing to flush.
    stats::Scalar pagesInvalidated; ///< Stale pages flushed machine-wide.

  private:
    struct CorePort
    {
        tlb::TlbHierarchy *tlb = nullptr;
        stats::Scalar *responded = nullptr;
        stats::Scalar *filtered = nullptr;
    };

    CoreTopology topo_;
    std::vector<CorePort> cores_;
    trace::EventRing *events_ = nullptr;
};

} // namespace pmodv::arch

#endif // PMODV_ARCH_SHOOTDOWN_BUS_HH
