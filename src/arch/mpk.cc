#include "arch/mpk.hh"

#include "common/logging.hh"

namespace pmodv::arch
{

MpkScheme::MpkScheme(stats::Group *parent, const ProtParams &params,
                     const CoreTopology &topo,
                     const tlb::AddressSpace &space)
    : ProtectionScheme(parent, "mpk", params, topo, space),
      keyExhausted(this, "key_exhausted",
                   "attaches that found no free protection key"),
      fillPolicy_(*this)
{
    keyHolder_.fill(kNullDomain);
    setFastCheck(&fastCheckThunk<MpkScheme>);
}

void
MpkScheme::onCoreAttached(CoreId, tlb::TlbHierarchy *tlb)
{
    // The pkey stamped into a PTE is core-agnostic: every core's TLB
    // fills through the same policy.
    tlb->setFillPolicy(&fillPolicy_);
}

Cycles
MpkScheme::FillPolicy::fill(ThreadId, Addr, const tlb::Region *region,
                            tlb::TlbEntry &entry)
{
    // The pkey field of the PTE, as written by pkey_mprotect().
    entry.key = region ? owner_.keyOf(region->domain) : kNullKey;
    if (entry.key == kInvalidKey)
        entry.key = kNullKey;
    return 0;
}

CheckResult
MpkScheme::checkAccess(const AccessContext &ctx)
{
    const ProtKey key = ctx.entry->key;
    if (key != kNullKey && keyHolder_[key] != kNullDomain)
        profile_.access(keyHolder_[key], activeCore_);
    // Domainless accesses skip the PKRU check but the page permission
    // still governs (an exhausted-attach PMO keeps its PTE rights).
    const Perm domain_perm =
        key == kNullKey ? Perm::ReadWrite
                        : pkrus_.forThread(ctx.tid).permFor(key);
    CheckResult res = judge(ctx, domain_perm, 0);
    if (!res.allowed)
        ++protectionFaults;
    return res;
}

Cycles
MpkScheme::setPerm(ThreadId tid, DomainId domain, Perm perm)
{
    perm = permNormalizeHw(perm);
    const Cycles cycles = chargeSetPerm();
    auto it = domainKey_.find(domain);
    if (it != domainKey_.end())
        profile_.setPerm(domain);
    if (it != domainKey_.end() && it->second != kNullKey)
        pkrus_.forThread(tid).setPerm(it->second, perm);
    // A domainless PMO (exhausted keys) still executes the WRPKRU.
    return cycles;
}

Cycles
MpkScheme::wrpkruRaw(ThreadId tid, ProtKey key, Perm perm)
{
    const Cycles cycles = chargeWrpkru();
    pkrus_.forThread(tid).setPerm(key, perm);
    return cycles;
}

Cycles
MpkScheme::attach(ThreadId, DomainId domain, Addr, Addr, Perm)
{
    ProtKey key = keyAlloc_.alloc();
    if (key == kInvalidKey) {
        // pkey_alloc() returned ENOSPC: the PMO stays domainless.
        ++keyExhausted;
        key = kNullKey;
    } else {
        // pkey_alloc() hands the key out in the no-access state for
        // every thread; a reused key must not leak its previous
        // owner's PKRU grants.
        pkrus_.resetKey(key);
        keyHolder_[key] = domain;
    }
    domainKey_[domain] = key;
    return 0;
}

Cycles
MpkScheme::detach(ThreadId, DomainId domain)
{
    auto it = domainKey_.find(domain);
    if (it == domainKey_.end())
        return 0;
    if (it->second != kNullKey) {
        keyAlloc_.free(it->second);
        keyHolder_[it->second] = kNullDomain;
        flushKeyAllCores(it->second);
    } else {
        // Domainless (exhausted) PMO: no key to flush by, but the
        // munmap behind detach still invalidates the range — without
        // it, stale translations keep the dead region's page rights.
        if (const tlb::Region *region = space_.findDomain(domain))
            flushRangeAllCores(region->base, region->size);
    }
    domainKey_.erase(it);
    return 0;
}

Cycles
MpkScheme::contextSwitch(ThreadId, ThreadId)
{
    // PKRU is part of the XSAVE state; per-thread registers are
    // already modelled, so the switch costs nothing extra here.
    return 0;
}

Perm
MpkScheme::effectivePerm(ThreadId tid, DomainId domain) const
{
    auto it = domainKey_.find(domain);
    if (it == domainKey_.end() || it->second == kNullKey)
        return Perm::ReadWrite; // Domainless: page permission governs.
    return pkrus_.forThread(tid).permFor(it->second);
}

ProtKey
MpkScheme::keyOf(DomainId domain) const
{
    auto it = domainKey_.find(domain);
    return it == domainKey_.end() ? kInvalidKey : it->second;
}

} // namespace pmodv::arch
