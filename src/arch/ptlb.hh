/**
 * @file
 * The Permission Table Lookaside Buffer (PTLB) of the hardware
 * domain-virtualization design: a small (16-entry) buffer caching the
 * current thread's domain permissions out of the OS-managed
 * Permission Table. Entries are {10-bit domain tag, 2-bit permission,
 * dirty bit}; dirty entries are written back on eviction and on
 * context switches.
 */

#ifndef PMODV_ARCH_PTLB_HH
#define PMODV_ARCH_PTLB_HH

#include <string>
#include <vector>

#include "common/plru.hh"
#include "common/types.hh"
#include "stats/stats.hh"

namespace pmodv::arch
{

/** One PTLB entry. */
struct PtlbEntry
{
    bool used = false;
    DomainId domain = kNullDomain;
    Perm perm = Perm::None;
    bool dirty = false;
};

/** The PTLB (fully associative, tree-PLRU replacement). */
class Ptlb : public stats::Group
{
  public:
    /** @p name distinguishes per-core instances ("ptlb_core1", ...). */
    Ptlb(stats::Group *parent, unsigned entries,
         std::string name = "ptlb");

    unsigned numEntries() const
    {
        return static_cast<unsigned>(slots_.size());
    }

    /** Lookup by domain; touches replacement state and stats. */
    PtlbEntry *lookup(DomainId domain);

    /** Probe without side effects. */
    const PtlbEntry *probe(DomainId domain) const;

    /**
     * Install an entry (evicting pseudo-LRU when full). An evicted
     * occupied slot is copied to @p evicted with @p had_eviction set.
     */
    PtlbEntry &insert(const PtlbEntry &entry, PtlbEntry &evicted,
                      bool &had_eviction);

    /** Drop the entry of @p domain (detach); false when absent. */
    bool invalidate(DomainId domain);

    /** Flush all entries, appending dirty ones to @p dirty_out. */
    void flushAll(std::vector<PtlbEntry> &dirty_out);

    unsigned usedCount() const;

    stats::Scalar hits;
    stats::Scalar misses;
    stats::Scalar evictions;
    stats::Histogram missLatency; ///< Cycles per miss (PT lookup).

  private:
    std::vector<PtlbEntry> slots_;
    TreePlru plru_;
};

} // namespace pmodv::arch

#endif // PMODV_ARCH_PTLB_HH
