/**
 * @file
 * The Permission Table Lookaside Buffer (PTLB) of the hardware
 * domain-virtualization design: a small (16-entry) buffer caching the
 * current thread's domain permissions out of the OS-managed
 * Permission Table. Entries are {10-bit domain tag, 2-bit permission,
 * dirty bit}; dirty entries are written back on eviction and on
 * context switches.
 */

#ifndef PMODV_ARCH_PTLB_HH
#define PMODV_ARCH_PTLB_HH

#include <string>
#include <vector>

#include "common/plru.hh"
#include "common/simd.hh"
#include "common/types.hh"
#include "stats/stats.hh"

namespace pmodv::arch
{

/** One PTLB entry. */
struct PtlbEntry
{
    bool used = false;
    DomainId domain = kNullDomain;
    Perm perm = Perm::None;
    bool dirty = false;
};

/** The PTLB (fully associative, tree-PLRU replacement). */
class Ptlb : public stats::Group
{
  public:
    /** @p name distinguishes per-core instances ("ptlb_core1", ...). */
    Ptlb(stats::Group *parent, unsigned entries,
         std::string name = "ptlb");

    unsigned numEntries() const
    {
        return static_cast<unsigned>(slots_.size());
    }

    /** Lookup by domain; touches replacement state and stats. */
    PtlbEntry *lookup(DomainId domain);

    /** Probe without side effects. */
    const PtlbEntry *probe(DomainId domain) const;

    /**
     * Install an entry (evicting pseudo-LRU when full). An evicted
     * occupied slot is copied to @p evicted with @p had_eviction set.
     */
    PtlbEntry &insert(const PtlbEntry &entry, PtlbEntry &evicted,
                      bool &had_eviction);

    /** Drop the entry of @p domain (detach); false when absent. */
    bool invalidate(DomainId domain);

    /** Flush all entries, appending dirty ones to @p dirty_out. */
    void flushAll(std::vector<PtlbEntry> &dirty_out);

    unsigned usedCount() const;

    /** Defer hot counters into packed locals; disabling flushes. */
    void setStatsDeferred(bool defer);

    /** Flush deferred counters into the stats tree now. */
    void flushDeferredStats();

    /** Lookups answered by the one-entry L0 filter (raw counter). */
    std::uint64_t l0Hits() const { return l0Hits_; }

    /** Monotonic structure generation (L0 self-invalidation). */
    std::uint64_t generation() const { return gen_; }

    stats::Scalar hits;
    stats::Scalar misses;
    stats::Scalar evictions;
    stats::Histogram missLatency; ///< Cycles per miss (PT lookup).

  private:
    /** Packed probe tag mirrored per slot (0 = unused slot). */
    static std::uint64_t packTag(DomainId domain)
    {
        return (static_cast<std::uint64_t>(domain) << 1) | 1;
    }

    void touchSlot(unsigned slot)
    {
        if (!touchLut_.empty())
            plru_.touchMasked(touchLut_[slot]);
        else
            plru_.touch(slot);
    }

    std::vector<PtlbEntry> slots_;
    /** Packed tag per slot (+simd::kTagPad zero slots). */
    std::vector<std::uint64_t> tags_;
    TreePlru plru_;
    std::vector<TreePlru::TouchOp> touchLut_;

    /**
     * L0 filter: the last domain hit or inserted. At most one used
     * slot per domain exists (insert dedupes), so a generation-valid
     * tag match provably lands on the same slot a full scan would.
     * In-place perm/dirty mutation through lookup()'s pointer leaves
     * the domain->slot mapping intact, so no bump is needed there.
     */
    std::uint64_t gen_ = 1;
    std::uint64_t l0Gen_ = 0;
    DomainId l0Domain_ = kNullDomain;
    unsigned l0Slot_ = 0;
    std::uint64_t l0Hits_ = 0;

    struct Pending
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
    };
    Pending pend_;
    bool defer_ = false;
};

} // namespace pmodv::arch

#endif // PMODV_ARCH_PTLB_HH
