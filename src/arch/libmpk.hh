/**
 * @file
 * A cost model of **libmpk** (Park et al., USENIX ATC'19), the
 * software MPK virtualization the paper compares against.
 *
 * Functionally libmpk behaves like the hardware MPK virtualization —
 * a 16-entry key cache over many domains with LRU eviction — but an
 * eviction runs in software: a trap/syscall, `pkey_mprotect()` PTE
 * rewrites across *every page* of both the victim and the incoming
 * domain, a TLB shootdown and a PKRU write. Eviction cost therefore
 * scales with domain size, the scaling the paper's Figure 6/7 exposes.
 */

#ifndef PMODV_ARCH_LIBMPK_HH
#define PMODV_ARCH_LIBMPK_HH

#include <array>
#include <unordered_map>

#include "arch/pkru.hh"
#include "arch/scheme.hh"

namespace pmodv::arch
{

/** libmpk software MPK virtualization. */
class LibMpkScheme : public ProtectionScheme
{
  public:
    LibMpkScheme(stats::Group *parent, const ProtParams &params,
                 const CoreTopology &topo,
                 const tlb::AddressSpace &space);

    CheckResult checkAccess(const AccessContext &ctx) override;
    Cycles setPerm(ThreadId tid, DomainId domain, Perm perm) override;
    Cycles attach(ThreadId tid, DomainId domain, Addr base, Addr size,
                  Perm max_perm) override;
    Cycles detach(ThreadId tid, DomainId domain) override;
    Cycles contextSwitch(ThreadId from, ThreadId to) override;
    Perm effectivePerm(ThreadId tid, DomainId domain) const override;

    /** The key currently backing @p domain (kInvalidKey if none). */
    ProtKey keyOf(DomainId domain) const;

    stats::Scalar ptePatches;

  protected:
    void onCoreAttached(CoreId core, tlb::TlbHierarchy *tlb) override;

  private:
    class FillPolicy : public tlb::TlbFillPolicy
    {
      public:
        explicit FillPolicy(LibMpkScheme &owner) : owner_(owner) {}
        Cycles fill(ThreadId tid, Addr va, const tlb::Region *region,
                    tlb::TlbEntry &entry) override;

      private:
        LibMpkScheme &owner_;
    };

    struct DomainState
    {
        ProtKey key = kInvalidKey;
        Addr base = 0;
        Addr size = 0;
        std::unordered_map<ThreadId, Perm> perms;
    };

    /** Map @p domain onto a key, evicting if necessary. */
    Cycles mapDomain(ThreadId tid, DomainState &st, DomainId domain);

    void touchKey(ProtKey key) { keyStamp_[key] = ++keyClock_; }
    ProtKey victimKey() const;

    std::unique_ptr<FillPolicy> fillPolicyStorage_;
    std::unordered_map<DomainId, DomainState> domains_;
    KeyAllocator keyAlloc_;
    PkruFile pkrus_;
    std::array<DomainId, kNumProtKeys> keyHolder_{};
    std::array<std::uint64_t, kNumProtKeys> keyStamp_{};
    std::uint64_t keyClock_ = 0;
};

} // namespace pmodv::arch

#endif // PMODV_ARCH_LIBMPK_HH
