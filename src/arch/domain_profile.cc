#include "arch/domain_profile.hh"

#include <algorithm>
#include <tuple>

namespace pmodv::arch
{

DomainCounters &
DomainProfile::grow(DomainId d)
{
    table_.resize(static_cast<std::size_t>(d) + 1);
    return table_[d];
}

DomainCounters
DomainProfile::counters(DomainId d) const
{
    return d < table_.size() ? table_[d] : DomainCounters{};
}

std::size_t
DomainProfile::numActiveDomains() const
{
    std::size_t n = 0;
    for (const DomainCounters &c : table_)
        n += c.zero() ? 0 : 1;
    return n;
}

std::vector<HotDomain>
DomainProfile::topN(std::size_t n) const
{
    std::vector<HotDomain> rows;
    for (DomainId d = 0; d < table_.size(); ++d) {
        if (table_[d].zero())
            continue;
        rows.push_back({d, table_[d]});
    }
    const auto hotter = [](const HotDomain &a, const HotDomain &b) {
        const DomainCounters &x = a.counters;
        const DomainCounters &y = b.counters;
        return std::tie(y.evictions, y.shootdownPages, y.fillMisses,
                        y.accesses, a.domain) <
               std::tie(x.evictions, x.shootdownPages, x.fillMisses,
                        x.accesses, b.domain);
    };
    std::sort(rows.begin(), rows.end(), hotter);
    if (rows.size() > n)
        rows.resize(n);
    return rows;
}

} // namespace pmodv::arch
