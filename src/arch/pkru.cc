#include "arch/pkru.hh"

#include <bit>

#include "common/logging.hh"

namespace pmodv::arch
{

void
Pkru::reset()
{
    // Key 0: AD=0, WD=0 (open). Keys 1..15: AD=1, WD=1 (inaccessible).
    value_ = 0xfffffffcu;
}

Perm
Pkru::permFor(ProtKey key) const
{
    panic_if(key >= kNumProtKeys, "PKRU key %u out of range", key);
    const bool ad = value_ & (1u << (2 * key));
    const bool wd = value_ & (1u << (2 * key + 1));
    if (ad)
        return Perm::None;
    return wd ? Perm::Read : Perm::ReadWrite;
}

void
Pkru::setPerm(ProtKey key, Perm perm)
{
    panic_if(key >= kNumProtKeys, "PKRU key %u out of range", key);
    bool ad = false, wd = false;
    switch (perm) {
      case Perm::None:
        ad = true;
        wd = true;
        break;
      case Perm::Read:
        wd = true;
        break;
      case Perm::Write:
        // MPK cannot express write-without-read; grant RW, the
        // strictest expressible superset containing W.
        break;
      case Perm::ReadWrite:
        break;
    }
    const std::uint32_t mask = 0x3u << (2 * key);
    std::uint32_t v = value_ & ~mask;
    if (ad)
        v |= 1u << (2 * key);
    if (wd)
        v |= 1u << (2 * key + 1);
    value_ = v;
}

ProtKey
KeyAllocator::alloc()
{
    for (ProtKey k = 1; k < kNumProtKeys; ++k) {
        const std::uint16_t bit = 1u << k;
        if (!(taken_ & bit)) {
            taken_ |= bit;
            return k;
        }
    }
    return kInvalidKey;
}

bool
KeyAllocator::free(ProtKey key)
{
    if (key == 0 || key >= kNumProtKeys)
        return false;
    const std::uint16_t bit = 1u << key;
    if (!(taken_ & bit))
        return false;
    taken_ &= ~bit;
    return true;
}

bool
KeyAllocator::isAllocated(ProtKey key) const
{
    if (key == 0 || key >= kNumProtKeys)
        return false;
    return taken_ & (1u << key);
}

unsigned
KeyAllocator::allocatedCount() const
{
    return static_cast<unsigned>(std::popcount(taken_));
}

} // namespace pmodv::arch
