#include "arch/libmpk.hh"

#include "arch/shootdown_bus.hh"
#include "common/logging.hh"

namespace pmodv::arch
{

LibMpkScheme::LibMpkScheme(stats::Group *parent, const ProtParams &params,
                           const CoreTopology &topo,
                           const tlb::AddressSpace &space)
    : ProtectionScheme(parent, "libmpk", params, topo, space),
      ptePatches(this, "pte_patches", "PTE pkey fields rewritten")
{
    keyHolder_.fill(kNullDomain);
    keyStamp_.fill(0);
    setFastCheck(&fastCheckThunk<LibMpkScheme>);
}

void
LibMpkScheme::onCoreAttached(CoreId, tlb::TlbHierarchy *tlb)
{
    if (!fillPolicyStorage_)
        fillPolicyStorage_ = std::make_unique<FillPolicy>(*this);
    tlb->setFillPolicy(fillPolicyStorage_.get());
}

Cycles
LibMpkScheme::FillPolicy::fill(ThreadId tid, Addr,
                               const tlb::Region *region,
                               tlb::TlbEntry &entry)
{
    if (!region || region->domain == kNullDomain) {
        entry.key = kNullKey;
        return 0;
    }
    // An access to a domain whose key was evicted traps; libmpk's
    // exception handler runs the software remap (paper §I: "if it
    // accesses an unmapped domain, an exception is triggered, and the
    // exception handler selects a domain to unmap and reassigns the
    // key to the new domain").
    Cycles cycles = 0;
    auto it = owner_.domains_.find(region->domain);
    if (it != owner_.domains_.end()) {
        DomainState &st = it->second;
        if (st.key == kInvalidKey)
            cycles = owner_.mapDomain(tid, st, region->domain);
        entry.key = st.key;
    } else {
        entry.key = kNullKey;
    }
    return cycles;
}

ProtKey
LibMpkScheme::victimKey() const
{
    ProtKey best = kInvalidKey;
    for (ProtKey k = 1; k < kNumProtKeys; ++k) {
        if (keyHolder_[k] == kNullDomain)
            continue;
        if (best == kInvalidKey || keyStamp_[k] < keyStamp_[best])
            best = k;
    }
    panic_if(best == kInvalidKey,
             "victimKey() called with no key holders");
    return best;
}

Cycles
LibMpkScheme::mapDomain(ThreadId tid, DomainState &st, DomainId domain)
{
    Cycles cycles = 0;

    // The remap trap is the incoming domain's protection-fill miss.
    profile_.fillMiss(domain);

    ProtKey key = keyAlloc_.alloc();
    std::uint64_t patched_pages = 0;

    if (key == kInvalidKey) {
        // Evict the LRU key holder: pkey_mprotect() strips the key
        // from every page of the victim domain.
        ++keyEvictions;
        const ProtKey victim = victimKey();
        const DomainId victim_domain = keyHolder_[victim];
        DomainState &vst = domains_.at(victim_domain);
        vst.key = kInvalidKey;
        keyHolder_[victim] = kNullDomain;

        patched_pages += vst.size / 4096;
        // The kernel's PTE rewrites invalidate stale translations of
        // both ranges on every core. With a shootdown bus the two
        // ranges go out as one broadcast; responding cores that held
        // stale entries each add an invalidation charge.
        ++shootdowns;
        Cycles inval = 0;
        std::uint64_t pages = 0;
        if (bus_) {
            const std::array<ShootdownRange, 2> ranges{
                ShootdownRange{vst.base, vst.size},
                ShootdownRange{st.base, st.size}};
            const ShootdownResult res =
                bus_->broadcast(activeCore_, tid, ranges);
            inval = res.cycles;
            pages = res.pages;
        } else {
            inval = topo_.tlbInvalidationCycles;
            if (tlb_) {
                pages += tlb_->flushRange(vst.base, vst.size);
                pages += tlb_->flushRange(st.base, st.size);
            }
        }
        cycles += inval;
        cycTlbInvalidation += static_cast<double>(inval);
        shootdownPages += static_cast<double>(pages);
        profile_.eviction(victim_domain, pages, activeCore_);
        postEvent(trace::EventKind::KeyEviction, tid, victim_domain,
                  victim);
        postEvent(trace::EventKind::Shootdown, tid, victim_domain,
                  pages);
        key = victim;
    }

    // Trap + pkey_mprotect syscall path, with per-PTE pkey rewrites
    // proportional to the *victim* domain size — the cost that makes
    // libmpk unscalable (constants calibrated per DESIGN.md §6; the
    // incoming domain's pages keep their lazily cached pkey).
    cycles += params_.libmpkSyscallCycles;
    cycSoftware += static_cast<double>(params_.libmpkSyscallCycles);

    ptePatches += static_cast<double>(patched_pages);
    const Cycles patch_cycles =
        params_.libmpkPtePatchCycles * patched_pages;
    cycles += patch_cycles;
    cycSoftware += static_cast<double>(patch_cycles);

    st.key = key;
    keyHolder_[key] = domain;
    touchKey(key);
    ++keyRemaps;
    // The key changed hands: clear its bits in every thread's PKRU
    // (the victim's grants must not leak to the incoming domain),
    // then restore each thread's recorded permission for the new
    // holder — libmpk has no context-switch hook to fix them lazily.
    pkrus_.resetKey(key);
    for (const auto &[t, p] : st.perms)
        pkrus_.forThread(t).setPerm(key, p);
    return cycles;
}

CheckResult
LibMpkScheme::checkAccess(const AccessContext &ctx)
{
    const ProtKey key = ctx.entry->key;
    Perm domain_perm = Perm::ReadWrite; // Domainless: page perm only.
    if (key != kNullKey) {
        touchKey(key);
        if (keyHolder_[key] != kNullDomain)
            profile_.access(keyHolder_[key], activeCore_);
        domain_perm = pkrus_.forThread(ctx.tid).permFor(key);
    }
    CheckResult res = judge(ctx, domain_perm, 0);
    if (!res.allowed)
        ++protectionFaults;
    return res;
}

Cycles
LibMpkScheme::setPerm(ThreadId tid, DomainId domain, Perm perm)
{
    perm = permNormalizeHw(perm);
    Cycles cycles = chargeSetPerm();

    // libmpk's user-level bookkeeping (domain hash lookup) runs on
    // every mpk_begin/end call.
    cycles += params_.libmpkFastPathCycles;
    cycSoftware += static_cast<double>(params_.libmpkFastPathCycles);

    auto it = domains_.find(domain);
    if (it == domains_.end())
        return cycles;
    profile_.setPerm(domain);
    DomainState &st = it->second;
    st.perms[tid] = perm;

    // Granting access to an unmapped domain triggers the slow path.
    if (st.key == kInvalidKey && perm != Perm::None)
        cycles += mapDomain(tid, st, domain);

    if (st.key != kInvalidKey) {
        pkrus_.forThread(tid).setPerm(st.key, perm);
        touchKey(st.key);
    }
    return cycles;
}

Cycles
LibMpkScheme::attach(ThreadId, DomainId domain, Addr base, Addr size,
                     Perm)
{
    panic_if(domains_.count(domain), "domain %u attached twice", domain);
    DomainState st;
    st.base = base;
    st.size = size;
    domains_[domain] = st;
    return 0;
}

Cycles
LibMpkScheme::detach(ThreadId, DomainId domain)
{
    auto it = domains_.find(domain);
    if (it == domains_.end())
        return 0;
    DomainState &st = it->second;
    if (st.key != kInvalidKey) {
        keyHolder_[st.key] = kNullDomain;
        keyAlloc_.free(st.key);
        // Functional munmap invalidation on every core; no IPI cost.
        flushRangeAllCores(st.base, st.size);
    }
    domains_.erase(it);
    return 0;
}

Cycles
LibMpkScheme::contextSwitch(ThreadId, ThreadId)
{
    // PKRU save/restore is part of normal thread state.
    return 0;
}

Perm
LibMpkScheme::effectivePerm(ThreadId tid, DomainId domain) const
{
    auto it = domains_.find(domain);
    if (it == domains_.end())
        return Perm::ReadWrite;
    const DomainState &st = it->second;
    if (st.key != kInvalidKey)
        return pkrus_.forThread(tid).permFor(st.key);
    auto p = st.perms.find(tid);
    return p == st.perms.end() ? Perm::None : p->second;
}

ProtKey
LibMpkScheme::keyOf(DomainId domain) const
{
    auto it = domains_.find(domain);
    return it == domains_.end() ? kInvalidKey : it->second.key;
}

} // namespace pmodv::arch
