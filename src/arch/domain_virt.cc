#include "arch/domain_virt.hh"

#include "common/logging.hh"
#include "stats/timeseries.hh"

namespace pmodv::arch
{

DomainVirtScheme::DomainVirtScheme(stats::Group *parent,
                                   const ProtParams &params,
                                   const CoreTopology &topo,
                                   const tlb::AddressSpace &space)
    : ProtectionScheme(parent, "domain_virt", params, topo, space),
      drtWalks(this, "drt_walks", "DRT walks on TLB misses"),
      ptlbWritebacks(this, "ptlb_writebacks",
                     "dirty PTLB entries written back to the PT"),
      contextSwitches(this, "context_switches",
                      "context switches processed")
{
    ptlbs_.push_back(std::make_unique<Ptlb>(this, params_.ptlbEntries));
    curTid_.push_back(0);
    setFastCheck(&fastCheckThunk<DomainVirtScheme>);
}

void
DomainVirtScheme::registerTimelineTracks(stats::TimeSeries &timeline)
{
    ProtectionScheme::registerTimelineTracks(timeline);
    timeline.track(ptlbs_[0]->misses, "ptlb_misses");
    timeline.track(drtWalks, "drt_walks");
}

void
DomainVirtScheme::setStatsDeferred(bool defer)
{
    ProtectionScheme::setStatsDeferred(defer);
    if (!defer && pendDrtWalks_) {
        drtWalks += pendDrtWalks_;
        pendDrtWalks_ = 0;
    }
    for (auto &p : ptlbs_)
        p->setStatsDeferred(defer);
}

void
DomainVirtScheme::flushDeferredStats()
{
    ProtectionScheme::flushDeferredStats();
    if (pendDrtWalks_) {
        drtWalks += pendDrtWalks_;
        pendDrtWalks_ = 0;
    }
    for (auto &p : ptlbs_)
        p->flushDeferredStats();
}

void
DomainVirtScheme::onCoreAttached(CoreId core, tlb::TlbHierarchy *tlb)
{
    if (!fillPolicyStorage_)
        fillPolicyStorage_ = std::make_unique<FillPolicy>(*this);
    tlb->setFillPolicy(fillPolicyStorage_.get());
    // Core 0's PTLB is built in the constructor ("ptlb"); each
    // further core gets a private one caching its running thread.
    while (ptlbs_.size() <= core) {
        ptlbs_.push_back(std::make_unique<Ptlb>(
            this, params_.ptlbEntries,
            "ptlb_core" + std::to_string(ptlbs_.size())));
        curTid_.push_back(0);
    }
}

Cycles
DomainVirtScheme::FillPolicy::fill(ThreadId, Addr va,
                                   const tlb::Region *region,
                                   tlb::TlbEntry &entry)
{
    DomainVirtScheme &s = owner_;
    if (!region) {
        entry.domain = kNullDomain;
        return 0;
    }
    // DRT walk, performed in parallel with the page table walk; the
    // DRT is shallower than the page table, so no extra latency.
    if (s.statsDeferred())
        ++s.pendDrtWalks_;
    else
        ++s.drtWalks;
    auto walk = s.drt_.walk(va);
    entry.domain = walk.found ? walk.domain : kNullDomain;
    entry.key = kNullKey; // This design has no protection keys.
    return 0;
}

void
DomainVirtScheme::writeback(ThreadId tid, const PtlbEntry &entry)
{
    ++ptlbWritebacks;
    pt_.set(entry.domain, tid, entry.perm);
}

Perm
DomainVirtScheme::lookupPerm(ThreadId tid, DomainId domain,
                             Cycles &cycles)
{
    Ptlb &ptlb = *ptlbs_[activeCore_];
    if (tid != curTid_[activeCore_]) {
        // Accesses are normally issued by the core's running thread;
        // a mismatch means the harness skipped the context switch, so
        // consult the PT directly (functional correctness first).
        return pt_.get(domain, tid);
    }
    if (PtlbEntry *hit = ptlb.lookup(domain))
        return hit->perm;

    // PTLB miss: fetch from the PT (Table II: 30 cycles including the
    // table lookup), then install the entry.
    profile_.fillMiss(domain);
    cycles += params_.ptlbMissCycles;
    chargeTableMissCyc(params_.ptlbMissCycles);
    ptlb.missLatency.sample(params_.ptlbMissCycles);
    postEvent(trace::EventKind::PtlbRefill, tid, domain,
              params_.ptlbMissCycles);

    PtlbEntry entry;
    entry.used = true;
    entry.domain = domain;
    entry.perm = pt_.get(domain, tid);
    entry.dirty = false;

    PtlbEntry evicted;
    bool had_eviction = false;
    ptlb.insert(entry, evicted, had_eviction);
    cycles += params_.ptlbEntryOpCycles;
    cycEntryChange += static_cast<double>(params_.ptlbEntryOpCycles);
    if (had_eviction && evicted.dirty) {
        writeback(tid, evicted);
        cycles += params_.ptlbEntryOpCycles;
        cycEntryChange += static_cast<double>(params_.ptlbEntryOpCycles);
    }
    return entry.perm;
}

CheckResult
DomainVirtScheme::checkAccess(const AccessContext &ctx)
{
    const DomainId domain = ctx.entry->domain;
    if (domain == kNullDomain) {
        // Domainless: no PTLB lookup, no extra latency — but the page
        // permission still governs.
        CheckResult res = judge(ctx, Perm::ReadWrite, 0);
        if (!res.allowed)
            ++protectionFaults;
        return res;
    }

    // The PTLB permission lookup adds latency to every domain access,
    // even when the data hits in the cache (paper §VI-A).
    profile_.access(domain, activeCore_);
    Cycles cycles = params_.ptlbAccessCycles;
    chargeAccessLatencyCyc(params_.ptlbAccessCycles);

    const Perm domain_perm = lookupPerm(ctx.tid, domain, cycles);
    CheckResult res = judge(ctx, domain_perm, cycles);
    if (!res.allowed)
        ++protectionFaults;
    return res;
}

Cycles
DomainVirtScheme::setPerm(ThreadId tid, DomainId domain, Perm perm)
{
    perm = permNormalizeHw(perm);
    Cycles cycles = chargeSetPerm();

    // SETPERM on an unattached domain is a no-op (as in every other
    // scheme): without this guard the PT/PTLB would accumulate
    // phantom grants a later attach of the same id would inherit.
    if (domains_.find(domain) == domains_.end())
        return cycles;

    profile_.setPerm(domain);

    // Each PTLB caches its core's *running* thread's permissions
    // only; a cross-thread permission update (an OS-assisted grant)
    // goes straight to the in-memory PT — and if the target thread is
    // running on another core, that core's cached entry is dropped so
    // its next access refetches the new value.
    Ptlb &ptlb = *ptlbs_[activeCore_];
    if (tid != curTid_[activeCore_]) {
        pt_.set(domain, tid, perm);
        for (CoreId c = 0; c < curTid_.size(); ++c)
            if (curTid_[c] == tid)
                ptlbs_[c]->invalidate(domain);
        return cycles;
    }

    // SETPERM completes entirely in the PTLB: hit entries are
    // modified in place and marked dirty; on a miss a new dirty entry
    // is installed (the 2-bit permission is fully overwritten, so no
    // PT read is needed).
    if (PtlbEntry *hit = ptlb.lookup(domain)) {
        hit->perm = perm;
        hit->dirty = true;
        cycles += params_.ptlbEntryOpCycles;
        cycEntryChange += static_cast<double>(params_.ptlbEntryOpCycles);
        return cycles;
    }

    PtlbEntry entry;
    entry.used = true;
    entry.domain = domain;
    entry.perm = perm;
    entry.dirty = true;

    PtlbEntry evicted;
    bool had_eviction = false;
    ptlb.insert(entry, evicted, had_eviction);
    cycles += params_.ptlbEntryOpCycles;
    cycEntryChange += static_cast<double>(params_.ptlbEntryOpCycles);
    if (had_eviction && evicted.dirty) {
        writeback(tid, evicted);
        cycles += params_.ptlbEntryOpCycles;
        cycEntryChange += static_cast<double>(params_.ptlbEntryOpCycles);
    }
    return cycles;
}

Cycles
DomainVirtScheme::attach(ThreadId, DomainId domain, Addr base, Addr size,
                         Perm)
{
    panic_if(domains_.count(domain), "domain %u attached twice", domain);
    auto info = std::make_shared<DrtInfo>();
    info->domain = domain;
    info->base = base;
    info->size = size;
    domains_[domain] = info;
    drt_.insert(base, size, domain, info);
    return 0;
}

Cycles
DomainVirtScheme::detach(ThreadId tid, DomainId domain)
{
    auto it = domains_.find(domain);
    if (it == domains_.end())
        return 0;
    // Stale PTLB state for this domain is dropped on every core
    // (dirty values are dead: the domain is going away).
    for (auto &p : ptlbs_)
        p->invalidate(domain);
    pt_.dropDomain(domain);
    // The unmap itself invalidates the translations on every core
    // (normal munmap shootdown, part of the detach syscall).
    flushRangeAllCores(it->second->base, it->second->size);
    (void)tid;
    drt_.remove(domain);
    domains_.erase(it);
    return 0;
}

Cycles
DomainVirtScheme::contextSwitch(ThreadId, ThreadId to)
{
    ++contextSwitches;
    Cycles cycles = 0;
    // Dirty PTLB entries belong to the core's outgoing thread; write
    // them back, then flush. The TLB itself keeps its
    // (thread-agnostic) domain ids — the design's key win on switches.
    std::vector<PtlbEntry> dirty;
    ptlbs_[activeCore_]->flushAll(dirty);
    for (const PtlbEntry &e : dirty) {
        writeback(curTid_[activeCore_], e);
        cycles += params_.contextSwitchWritebackCycles;
        cycEntryChange +=
            static_cast<double>(params_.contextSwitchWritebackCycles);
    }
    curTid_[activeCore_] = to;
    return cycles;
}

Perm
DomainVirtScheme::effectivePerm(ThreadId tid, DomainId domain) const
{
    if (!domains_.count(domain))
        return Perm::ReadWrite; // Not a domain: page permission rules.
    for (CoreId c = 0; c < curTid_.size(); ++c) {
        if (tid != curTid_[c])
            continue;
        if (const PtlbEntry *e = ptlbs_[c]->probe(domain))
            return e->perm;
    }
    return pt_.get(domain, tid);
}

std::uint64_t
DomainVirtScheme::drtMemoryBytes() const
{
    return drt_.nodeCount() * kRadixFanout * 8;
}

} // namespace pmodv::arch
