/**
 * @file
 * The Domain Translation Table Lookaside Buffer (DTTLB) of the
 * hardware MPK-virtualization design: a small CAM (16 entries in the
 * base configuration) caching DTT entries. Each entry tags an entire
 * PMO VA range and records the domain id, the protection key the
 * domain currently maps to, a valid bit (domain presently holds a
 * key) and a dirty bit (key mapping changed since the DTT was
 * written).
 */

#ifndef PMODV_ARCH_DTTLB_HH
#define PMODV_ARCH_DTTLB_HH

#include <string>
#include <vector>

#include "common/plru.hh"
#include "common/types.hh"
#include "stats/stats.hh"

namespace pmodv::arch
{

/** One DTTLB entry (VA-range tagged). */
struct DttlbEntry
{
    bool used = false;  ///< Slot occupied.
    Addr base = 0;      ///< VA range tag: base...
    Addr size = 0;      ///< ...and length of the whole PMO range.
    DomainId domain = kNullDomain;
    ProtKey key = kNullKey;
    bool valid = false; ///< Domain currently maps to `key`.
    bool dirty = false; ///< Mapping differs from the in-memory DTT.
    /**
     * Scheme-private memo riding along with the entry (mpk_virt
     * caches its per-domain bookkeeping pointer here so a DTTLB hit
     * skips the domain-map lookup). Never part of the modeled state.
     */
    void *payload = nullptr;

    bool contains(Addr va) const
    {
        return used && va >= base && va < base + size;
    }
};

/** The DTTLB CAM with tree-PLRU slot replacement. */
class Dttlb : public stats::Group
{
  public:
    /** @p name distinguishes per-core instances ("dttlb_core1", ...). */
    Dttlb(stats::Group *parent, unsigned entries,
          std::string name = "dttlb");

    unsigned numEntries() const
    {
        return static_cast<unsigned>(slots_.size());
    }

    /**
     * Associative lookup by VA; returns the matching entry (touching
     * replacement state and hit/miss stats) or nullptr.
     */
    DttlbEntry *lookupVa(Addr va);

    /** Lookup by domain id without stats side effects. */
    DttlbEntry *findDomain(DomainId domain);

    /**
     * Install an entry, evicting a pseudo-LRU slot when full. When an
     * occupied slot is evicted, a copy of it is left in @p evicted
     * (and @p had_eviction set) so the caller can write dirty state
     * back to the DTT. Returns the installed entry.
     */
    DttlbEntry &insert(const DttlbEntry &entry, DttlbEntry &evicted,
                       bool &had_eviction);

    /** Drop the entry of @p domain (SETPERM invalidation); false if
     *  not cached. */
    bool invalidateDomain(DomainId domain);

    /**
     * Flush everything (context switch). Dirty entries are appended
     * to @p dirty_out so the caller can write them back.
     */
    void flushAll(std::vector<DttlbEntry> &dirty_out);

    /** Occupied slot count. */
    unsigned usedCount() const;

    /** Defer hot counters into packed locals; disabling flushes. */
    void setStatsDeferred(bool defer);

    /** Flush deferred counters into the stats tree now. */
    void flushDeferredStats();

    /** Lookups answered by the one-entry L0 filter (raw counter). */
    std::uint64_t l0Hits() const { return l0Hits_; }

    /** Monotonic structure generation (L0 self-invalidation). */
    std::uint64_t generation() const { return gen_; }

    stats::Scalar hits;
    stats::Scalar misses;
    stats::Scalar evictions;
    stats::Histogram missLatency; ///< Cycles per miss (DTT walk).

  private:
    void touchSlot(unsigned slot)
    {
        if (!touchLut_.empty())
            plru_.touchMasked(touchLut_[slot]);
        else
            plru_.touch(slot);
    }

    std::vector<DttlbEntry> slots_;
    TreePlru plru_;
    std::vector<TreePlru::TouchOp> touchLut_;

    /**
     * L0 filter: the slot that matched the previous VA lookup,
     * re-verified with contains() before use. Used slots tag disjoint
     * VA ranges (AddressSpace rejects overlapping maps), so a
     * containing slot is unique and index order cannot matter.
     * In-place key/valid/dirty mutation through returned pointers
     * leaves the range->slot mapping intact; structural changes
     * (insert/invalidate/flush) bump gen_.
     */
    std::uint64_t gen_ = 1;
    std::uint64_t l0Gen_ = 0;
    unsigned l0Slot_ = 0;
    std::uint64_t l0Hits_ = 0;

    struct Pending
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
    };
    Pending pend_;
    bool defer_ = false;
};

} // namespace pmodv::arch

#endif // PMODV_ARCH_DTTLB_HH
