/**
 * @file
 * The Domain Translation Table Lookaside Buffer (DTTLB) of the
 * hardware MPK-virtualization design: a small CAM (16 entries in the
 * base configuration) caching DTT entries. Each entry tags an entire
 * PMO VA range and records the domain id, the protection key the
 * domain currently maps to, a valid bit (domain presently holds a
 * key) and a dirty bit (key mapping changed since the DTT was
 * written).
 */

#ifndef PMODV_ARCH_DTTLB_HH
#define PMODV_ARCH_DTTLB_HH

#include <string>
#include <vector>

#include "common/plru.hh"
#include "common/types.hh"
#include "stats/stats.hh"

namespace pmodv::arch
{

/** One DTTLB entry (VA-range tagged). */
struct DttlbEntry
{
    bool used = false;  ///< Slot occupied.
    Addr base = 0;      ///< VA range tag: base...
    Addr size = 0;      ///< ...and length of the whole PMO range.
    DomainId domain = kNullDomain;
    ProtKey key = kNullKey;
    bool valid = false; ///< Domain currently maps to `key`.
    bool dirty = false; ///< Mapping differs from the in-memory DTT.

    bool contains(Addr va) const
    {
        return used && va >= base && va < base + size;
    }
};

/** The DTTLB CAM with tree-PLRU slot replacement. */
class Dttlb : public stats::Group
{
  public:
    /** @p name distinguishes per-core instances ("dttlb_core1", ...). */
    Dttlb(stats::Group *parent, unsigned entries,
          std::string name = "dttlb");

    unsigned numEntries() const
    {
        return static_cast<unsigned>(slots_.size());
    }

    /**
     * Associative lookup by VA; returns the matching entry (touching
     * replacement state and hit/miss stats) or nullptr.
     */
    DttlbEntry *lookupVa(Addr va);

    /** Lookup by domain id without stats side effects. */
    DttlbEntry *findDomain(DomainId domain);

    /**
     * Install an entry, evicting a pseudo-LRU slot when full. When an
     * occupied slot is evicted, a copy of it is left in @p evicted
     * (and @p had_eviction set) so the caller can write dirty state
     * back to the DTT. Returns the installed entry.
     */
    DttlbEntry &insert(const DttlbEntry &entry, DttlbEntry &evicted,
                       bool &had_eviction);

    /** Drop the entry of @p domain (SETPERM invalidation); false if
     *  not cached. */
    bool invalidateDomain(DomainId domain);

    /**
     * Flush everything (context switch). Dirty entries are appended
     * to @p dirty_out so the caller can write them back.
     */
    void flushAll(std::vector<DttlbEntry> &dirty_out);

    /** Occupied slot count. */
    unsigned usedCount() const;

    stats::Scalar hits;
    stats::Scalar misses;
    stats::Scalar evictions;
    stats::Histogram missLatency; ///< Cycles per miss (DTT walk).

  private:
    std::vector<DttlbEntry> slots_;
    TreePlru plru_;
};

} // namespace pmodv::arch

#endif // PMODV_ARCH_DTTLB_HH
