/**
 * @file
 * Stock Intel MPK as a protection scheme: up to 15 allocatable keys,
 * per-thread PKRU, pkey-stamped TLB entries, WRPKRU-priced permission
 * changes. Beyond 15 simultaneously attached PMOs the allocator runs
 * dry and further PMOs become domainless — exactly the security gap
 * the paper motivates with.
 */

#ifndef PMODV_ARCH_MPK_HH
#define PMODV_ARCH_MPK_HH

#include <array>
#include <unordered_map>

#include "arch/pkru.hh"
#include "arch/scheme.hh"

namespace pmodv::arch
{

/** Stock MPK (no virtualization). */
class MpkScheme : public ProtectionScheme
{
  public:
    MpkScheme(stats::Group *parent, const ProtParams &params,
              const CoreTopology &topo, const tlb::AddressSpace &space);

    CheckResult checkAccess(const AccessContext &ctx) override;
    Cycles setPerm(ThreadId tid, DomainId domain, Perm perm) override;
    Cycles attach(ThreadId tid, DomainId domain, Addr base, Addr size,
                  Perm max_perm) override;
    Cycles detach(ThreadId tid, DomainId domain) override;
    Cycles contextSwitch(ThreadId from, ThreadId to) override;
    Perm effectivePerm(ThreadId tid, DomainId domain) const override;

    /** The key currently backing @p domain (kInvalidKey if none). */
    ProtKey keyOf(DomainId domain) const;

    /** Direct WRPKRU: set @p key's bits in @p tid's PKRU. */
    Cycles wrpkruRaw(ThreadId tid, ProtKey key, Perm perm) override;

    const Pkru &pkru(ThreadId tid) const { return pkrus_.forThread(tid); }

    /** Attach requests that found no free key (went domainless). */
    stats::Scalar keyExhausted;

  protected:
    void onCoreAttached(CoreId core, tlb::TlbHierarchy *tlb) override;

  private:
    class FillPolicy : public tlb::TlbFillPolicy
    {
      public:
        explicit FillPolicy(MpkScheme &owner) : owner_(owner) {}
        Cycles fill(ThreadId tid, Addr va, const tlb::Region *region,
                    tlb::TlbEntry &entry) override;

      private:
        MpkScheme &owner_;
    };

    KeyAllocator keyAlloc_;
    PkruFile pkrus_;
    std::unordered_map<DomainId, ProtKey> domainKey_;
    /** Reverse of domainKey_ for access attribution (kNullDomain when
     *  the key is free; domainless PMOs share kNullKey and stay
     *  unattributed). */
    std::array<DomainId, kNumProtKeys> keyHolder_{};
    FillPolicy fillPolicy_;
};

} // namespace pmodv::arch

#endif // PMODV_ARCH_MPK_HH
