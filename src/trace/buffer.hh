/**
 * @file
 * The immutable replay trace buffer.
 *
 * A TraceBuffer is the capture-once / replay-many handle of the v2
 * trace pipeline: one arena-backed (or mmap-backed, when loaded
 * zero-copy from a v2 trace file) array of TraceRecords, 64-byte
 * aligned, shared by reference across every per-scheme replay
 * pipeline. Alongside the records it carries a TraceSummary — the
 * per-type counts, instruction totals and checksum computed in the
 * single pass that built the buffer — so consumers (trace info,
 * replay counters, file headers) never rescan the body.
 */

#ifndef PMODV_TRACE_BUFFER_HH
#define PMODV_TRACE_BUFFER_HH

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "trace/record.hh"

namespace pmodv::trace
{

/** Record-store alignment: one x86 cache line. */
inline constexpr std::size_t kTraceBufferAlign = 64;

/** FNV-1a 64-bit offset basis (trace checksums start here). */
inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
/** FNV-1a 64-bit prime. */
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/**
 * Per-type record counts, derived totals and the FNV-1a checksum of
 * the raw record bytes, accumulated in one pass over a trace. The v2
 * trace file header embeds one of these verbatim.
 */
struct TraceSummary
{
    std::uint64_t counts[kNumRecordTypes] = {};
    std::uint64_t instBlockInsts = 0; ///< Instructions in InstBlocks.
    std::uint64_t pmoAccesses = 0;    ///< Loads/stores to PMO memory.
    std::uint64_t checksum = kFnvOffsetBasis;

    /** Fold one record into counts and checksum. */
    void add(const TraceRecord &rec);

    std::uint64_t count(RecordType t) const
    {
        return counts[static_cast<std::size_t>(t)];
    }

    /** Total record count across all types. */
    std::uint64_t totalRecords() const;

    /** True when counts and checksum match @p other exactly. */
    bool matches(const TraceSummary &other) const;
};

/**
 * An immutable, 64-byte-aligned TraceRecord store. Construction is
 * the only mutation; afterwards the buffer is safe to share across
 * replay worker threads by const reference / shared_ptr.
 */
class TraceBuffer
{
  public:
    ~TraceBuffer();

    TraceBuffer(const TraceBuffer &) = delete;
    TraceBuffer &operator=(const TraceBuffer &) = delete;

    /** Build a buffer by copying @p records into an aligned arena. */
    static std::shared_ptr<const TraceBuffer>
    copyOf(std::span<const TraceRecord> records);

    /** As copyOf(), from a vector (the vector is released after). */
    static std::shared_ptr<const TraceBuffer>
    fromRecords(std::vector<TraceRecord> records);

    /**
     * Adopt an mmap'ed file region: @p records points inside
     * [map, map + map_bytes), which is munmap'ed when the buffer
     * dies. @p summary must already be verified by the caller.
     * Used by TraceFileReader::view() for zero-copy v2 loads.
     */
    static std::shared_ptr<const TraceBuffer>
    adoptMapping(void *map, std::size_t map_bytes,
                 const TraceRecord *records, std::size_t count,
                 const TraceSummary &summary);

    std::span<const TraceRecord> records() const
    {
        return {records_, count_};
    }

    const TraceRecord *data() const { return records_; }
    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }

    /** The one-pass statistics captured while building the buffer. */
    const TraceSummary &summary() const { return summary_; }

    /** True when the records live in an mmap'ed trace file. */
    bool zeroCopy() const { return map_ != nullptr; }

  private:
    TraceBuffer() = default;

    const TraceRecord *records_ = nullptr;
    std::size_t count_ = 0;
    TraceSummary summary_;
    void *arena_ = nullptr; ///< Owned aligned storage, or nullptr.
    void *map_ = nullptr;   ///< Owned mmap region, or nullptr.
    std::size_t mapBytes_ = 0;
};

} // namespace pmodv::trace

#endif // PMODV_TRACE_BUFFER_HH
