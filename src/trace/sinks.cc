#include "trace/sinks.hh"

namespace pmodv::trace
{

void
CountingSink::put(const TraceRecord &rec)
{
    ++counts_[static_cast<std::size_t>(rec.type)];
    if (rec.type == RecordType::InstBlock)
        instBlockInsts_ += rec.aux;
    if (rec.isPmoAccess())
        ++pmoAccesses_;
}

void
CountingSink::addBatch(std::span<const TraceRecord> records)
{
    for (const TraceRecord &rec : records)
        put(rec);
}

void
CountingSink::addSummary(const TraceSummary &summary)
{
    for (std::size_t i = 0; i < kNumRecordTypes; ++i)
        counts_[i] += summary.counts[i];
    instBlockInsts_ += summary.instBlockInsts;
    pmoAccesses_ += summary.pmoAccesses;
}

std::uint64_t
CountingSink::totalInstructions() const
{
    return instBlockInsts_ + memAccesses() + permissionSwitches();
}

void
CountingSink::reset()
{
    for (auto &c : counts_)
        c = 0;
    instBlockInsts_ = 0;
    pmoAccesses_ = 0;
}

} // namespace pmodv::trace
