#include "trace/event_ring.hh"

#include "common/logging.hh"

namespace pmodv::trace
{

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::KeyEviction:
        return "key_eviction";
      case EventKind::Shootdown:
        return "shootdown";
      case EventKind::PtlbRefill:
        return "ptlb_refill";
      case EventKind::DttlbRefill:
        return "dttlb_refill";
      case EventKind::TxnCommit:
        return "txn_commit";
      case EventKind::Ipi:
        return "ipi";
    }
    return "unknown";
}

EventRing::EventRing(stats::Group *parent, std::string name,
                     std::size_t capacity)
    : stats::Group(parent, std::move(name)),
      recorded(this, "recorded", "events posted to the ring"),
      dropped(this, "dropped", "events overwritten before being read"),
      ring_(capacity)
{
    fatal_if(capacity == 0, "event ring needs a non-zero capacity");
}

void
EventRing::post(EventKind kind, ThreadId tid, std::uint32_t arg,
                std::uint64_t value)
{
    Event ev;
    ev.cycle = clock_ ? *clock_ : 0;
    ev.value = value;
    ev.id = ++nextId_;
    ev.req = curReq_;
    ev.arg = arg;
    ev.tid = tid;
    ev.kind = kind;

    ++recorded;
    if (count_ == ring_.size()) {
        // Full: overwrite the oldest slot and advance the head.
        ring_[head_] = ev;
        head_ = (head_ + 1) % ring_.size();
        ++dropped;
        return;
    }
    ring_[(head_ + count_) % ring_.size()] = ev;
    ++count_;
}

std::vector<Event>
EventRing::snapshot() const
{
    std::vector<Event> out;
    out.reserve(count_);
    for (std::size_t i = 0; i < count_; ++i)
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    return out;
}

std::vector<Event>
EventRing::drain()
{
    std::vector<Event> out = snapshot();
    head_ = 0;
    count_ = 0;
    return out;
}

} // namespace pmodv::trace
