#include "trace/perfetto.hh"

#include <cmath>
#include <iomanip>
#include <sstream>

namespace pmodv::trace
{

namespace
{

/** Deterministic double formatting (mirrors the stats exporters). */
std::string
formatNumber(double value)
{
    if (!std::isfinite(value))
        return "0";
    if (value == std::nearbyint(value) &&
        std::fabs(value) < 9007199254740992.0) { // 2^53
        std::ostringstream os;
        os << static_cast<long long>(value);
        return os.str();
    }
    std::ostringstream os;
    os << std::setprecision(17) << value;
    return os.str();
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

std::string
PerfettoExporter::timestamp(std::uint64_t cycle) const
{
    return formatNumber(static_cast<double>(cycle) / cyclesPerUsec_);
}

void
PerfettoExporter::appendArgs(std::string &out, const Args &args) const
{
    out += ",\"args\":{";
    bool first = true;
    for (const auto &[key, value] : args) {
        if (!first)
            out += ",";
        first = false;
        out += "\"" + jsonEscape(key) + "\":" + formatNumber(value);
    }
    out += "}";
}

int
PerfettoExporter::addTrack(const std::string &name)
{
    const int pid = numTracks_++;
    events_.push_back("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
                      std::to_string(pid) + ",\"args\":{\"name\":\"" +
                      jsonEscape(name) + "\"}}");
    return pid;
}

void
PerfettoExporter::span(int track, const std::string &name,
                       std::uint64_t begin, std::uint64_t duration,
                       ThreadId tid, const Args &args)
{
    std::string ev = "{\"name\":\"" + jsonEscape(name) +
                     "\",\"ph\":\"X\",\"ts\":" + timestamp(begin) +
                     ",\"dur\":" +
                     formatNumber(static_cast<double>(duration) /
                                  cyclesPerUsec_) +
                     ",\"pid\":" + std::to_string(track) +
                     ",\"tid\":" + std::to_string(tid);
    if (!args.empty())
        appendArgs(ev, args);
    ev += "}";
    events_.push_back(std::move(ev));
}

void
PerfettoExporter::instant(int track, const std::string &name,
                          std::uint64_t cycle, ThreadId tid,
                          const Args &args)
{
    std::string ev = "{\"name\":\"" + jsonEscape(name) +
                     "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" +
                     timestamp(cycle) +
                     ",\"pid\":" + std::to_string(track) +
                     ",\"tid\":" + std::to_string(tid);
    if (!args.empty())
        appendArgs(ev, args);
    ev += "}";
    events_.push_back(std::move(ev));
}

void
PerfettoExporter::counter(int track, const std::string &name,
                          std::uint64_t cycle, double value)
{
    events_.push_back("{\"name\":\"" + jsonEscape(name) +
                      "\",\"ph\":\"C\",\"ts\":" + timestamp(cycle) +
                      ",\"pid\":" + std::to_string(track) +
                      ",\"args\":{\"value\":" + formatNumber(value) +
                      "}}");
}

void
PerfettoExporter::flowStart(int track, const std::string &name,
                            std::uint64_t cycle, ThreadId tid,
                            std::uint64_t id)
{
    events_.push_back("{\"name\":\"" + jsonEscape(name) +
                      "\",\"ph\":\"s\",\"cat\":\"blame\",\"id\":" +
                      std::to_string(id) + ",\"ts\":" + timestamp(cycle) +
                      ",\"pid\":" + std::to_string(track) +
                      ",\"tid\":" + std::to_string(tid) + "}");
}

void
PerfettoExporter::flowEnd(int track, const std::string &name,
                          std::uint64_t cycle, ThreadId tid,
                          std::uint64_t id)
{
    events_.push_back("{\"name\":\"" + jsonEscape(name) +
                      "\",\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"blame\","
                      "\"id\":" +
                      std::to_string(id) + ",\"ts\":" + timestamp(cycle) +
                      ",\"pid\":" + std::to_string(track) +
                      ",\"tid\":" + std::to_string(tid) + "}");
}

void
PerfettoExporter::write(std::ostream &os) const
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    for (std::size_t i = 0; i < events_.size(); ++i)
        os << (i ? ",\n" : "\n") << events_[i];
    os << "\n]}\n";
}

std::string
PerfettoExporter::toString() const
{
    std::ostringstream os;
    write(os);
    return os.str();
}

} // namespace pmodv::trace
