#include "trace/buffer.hh"

#include <cstring>
#include <new>

#include <sys/mman.h>

#include "common/logging.hh"

namespace pmodv::trace
{

void
TraceSummary::add(const TraceRecord &rec)
{
    ++counts[static_cast<std::size_t>(rec.type)];
    if (rec.type == RecordType::InstBlock)
        instBlockInsts += rec.aux;
    if (rec.isPmoAccess())
        ++pmoAccesses;

    // FNV-1a over the raw record bytes. TraceRecord is trivially
    // copyable and padding-free (static_assert'ed to 24 bytes), so
    // hashing the object representation is deterministic.
    const auto *p = reinterpret_cast<const unsigned char *>(&rec);
    for (std::size_t i = 0; i < sizeof(TraceRecord); ++i) {
        checksum ^= p[i];
        checksum *= kFnvPrime;
    }
}

std::uint64_t
TraceSummary::totalRecords() const
{
    std::uint64_t total = 0;
    for (std::uint64_t c : counts)
        total += c;
    return total;
}

bool
TraceSummary::matches(const TraceSummary &other) const
{
    if (checksum != other.checksum ||
        instBlockInsts != other.instBlockInsts ||
        pmoAccesses != other.pmoAccesses)
        return false;
    for (std::size_t i = 0; i < kNumRecordTypes; ++i) {
        if (counts[i] != other.counts[i])
            return false;
    }
    return true;
}

TraceBuffer::~TraceBuffer()
{
    if (arena_)
        ::operator delete(arena_, std::align_val_t{kTraceBufferAlign});
    if (map_)
        ::munmap(map_, mapBytes_);
}

std::shared_ptr<const TraceBuffer>
TraceBuffer::copyOf(std::span<const TraceRecord> records)
{
    auto buf = std::shared_ptr<TraceBuffer>(new TraceBuffer);
    buf->count_ = records.size();
    if (!records.empty()) {
        const std::size_t bytes = records.size() * sizeof(TraceRecord);
        buf->arena_ = ::operator new(
            bytes, std::align_val_t{kTraceBufferAlign});
        std::memcpy(buf->arena_, records.data(), bytes);
        buf->records_ = static_cast<const TraceRecord *>(buf->arena_);
    }
    for (const TraceRecord &rec : records)
        buf->summary_.add(rec);
    return buf;
}

std::shared_ptr<const TraceBuffer>
TraceBuffer::fromRecords(std::vector<TraceRecord> records)
{
    return copyOf(std::span<const TraceRecord>(records));
}

std::shared_ptr<const TraceBuffer>
TraceBuffer::adoptMapping(void *map, std::size_t map_bytes,
                          const TraceRecord *records, std::size_t count,
                          const TraceSummary &summary)
{
    panic_if(!map, "TraceBuffer::adoptMapping without a mapping");
    auto buf = std::shared_ptr<TraceBuffer>(new TraceBuffer);
    buf->map_ = map;
    buf->mapBytes_ = map_bytes;
    buf->records_ = records;
    buf->count_ = count;
    buf->summary_ = summary;
    return buf;
}

} // namespace pmodv::trace
