/**
 * @file
 * The dynamic trace record format.
 *
 * Workloads execute on the PMO library and emit a stream of
 * TraceRecords — the equivalent of the paper's Pin-captured traces.
 * The timing core replays this stream against each protection scheme.
 */

#ifndef PMODV_TRACE_RECORD_HH
#define PMODV_TRACE_RECORD_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/types.hh"

namespace pmodv::trace
{

/** Kinds of events a trace may contain. */
enum class RecordType : std::uint8_t
{
    /** A block of @c aux non-memory instructions. */
    InstBlock = 0,
    /** A data load from @c addr (size in @c aux). */
    Load = 1,
    /** A data store to @c addr (size in @c aux). */
    Store = 2,
    /**
     * A SETPERM permission change: domain @c aux set to the Perm in
     * the record flags for the issuing thread. Serializing
     * (full fence), costs the WRPKRU latency.
     */
    SetPerm = 3,
    /**
     * A legacy MPK WRPKRU write of the whole PKRU. @c aux holds the
     * protection key, flags the permission. Used by single-PMO runs
     * that model stock MPK usage.
     */
    Wrpkru = 4,
    /**
     * Attach system call: PMO/domain @c aux mapped at VA base
     * @c addr, byte size @c value; flags carry the requested Perm.
     */
    Attach = 5,
    /** Detach system call for domain @c aux. */
    Detach = 6,
    /** The core context-switches to thread @c aux. */
    ThreadSwitch = 7,
    /** Start of a logical workload operation (for per-op stats). */
    OpBegin = 8,
    /** End of a logical workload operation. */
    OpEnd = 9,
};

/** Number of distinct RecordType values (array sizing). */
inline constexpr std::size_t kNumRecordTypes = 10;

/** Flag bit: the access targets PMO (NVM-backed) memory. */
inline constexpr std::uint8_t kFlagPmo = 0x01;

/**
 * Flag bit on OpBegin records: the op carries an open-loop arrival
 * stamp. `addr` then holds the request's arrival time in model cycles
 * and `value` its latency class (see SimConfig::opClasses). Reuses
 * bit 0, which only means kFlagPmo on load/store records.
 */
inline constexpr std::uint8_t kFlagOpArrival = 0x01;

/** Encode a Perm value into record flags (bits 1..2). */
constexpr std::uint8_t
encodePermFlags(Perm p)
{
    return static_cast<std::uint8_t>(static_cast<std::uint8_t>(p) << 1);
}

/** Decode a Perm value from record flags. */
constexpr Perm
decodePermFlags(std::uint8_t flags)
{
    return static_cast<Perm>((flags >> 1) & 0x3);
}

/** Encode a PageSize into record flags (bits 3..4, attach records). */
constexpr std::uint8_t
encodePageSizeFlags(PageSize ps)
{
    return static_cast<std::uint8_t>(static_cast<std::uint8_t>(ps)
                                     << 3);
}

/** Decode a PageSize from record flags. */
constexpr PageSize
decodePageSizeFlags(std::uint8_t flags)
{
    return static_cast<PageSize>((flags >> 3) & 0x3);
}

/**
 * One dynamic trace event. 24 bytes, trivially copyable, suitable for
 * bulk binary I/O.
 */
struct TraceRecord
{
    RecordType type = RecordType::InstBlock;
    std::uint8_t flags = 0;
    std::uint16_t tid = 0;  ///< Issuing software thread.
    std::uint32_t aux = 0;  ///< Type-specific payload (count/domain/...).
    std::uint64_t addr = 0; ///< Virtual address where applicable.
    std::uint64_t value = 0; ///< Extra payload (sizes etc.).

    /** Build an instruction-block record. */
    static TraceRecord
    instBlock(std::uint16_t tid, std::uint32_t count)
    {
        return {RecordType::InstBlock, 0, tid, count, 0, 0};
    }

    /** Build a load record. */
    static TraceRecord
    load(std::uint16_t tid, Addr addr, std::uint32_t size, bool pmo)
    {
        return {RecordType::Load,
                static_cast<std::uint8_t>(pmo ? kFlagPmo : 0), tid, size,
                addr, 0};
    }

    /** Build a store record. */
    static TraceRecord
    store(std::uint16_t tid, Addr addr, std::uint32_t size, bool pmo)
    {
        return {RecordType::Store,
                static_cast<std::uint8_t>(pmo ? kFlagPmo : 0), tid, size,
                addr, 0};
    }

    /** Build a SETPERM record. */
    static TraceRecord
    setPerm(std::uint16_t tid, DomainId domain, Perm perm)
    {
        return {RecordType::SetPerm, encodePermFlags(perm), tid, domain,
                0, 0};
    }

    /** Build a WRPKRU record. */
    static TraceRecord
    wrpkru(std::uint16_t tid, ProtKey key, Perm perm)
    {
        return {RecordType::Wrpkru, encodePermFlags(perm), tid, key, 0,
                0};
    }

    /** Build an attach record (mapping granularity defaults to 4KB). */
    static TraceRecord
    attach(std::uint16_t tid, DomainId domain, Addr va_base, Addr size,
           Perm perm, PageSize page_size = PageSize::Size4K)
    {
        return {RecordType::Attach,
                static_cast<std::uint8_t>(encodePermFlags(perm) |
                                          encodePageSizeFlags(page_size)),
                tid, domain, va_base, size};
    }

    /** Build a detach record. */
    static TraceRecord
    detach(std::uint16_t tid, DomainId domain)
    {
        return {RecordType::Detach, 0, tid, domain, 0, 0};
    }

    /** Build a thread (context) switch record. */
    static TraceRecord
    threadSwitch(std::uint16_t new_tid)
    {
        return {RecordType::ThreadSwitch, 0, new_tid, new_tid, 0, 0};
    }

    /** Build an operation-begin marker. */
    static TraceRecord
    opBegin(std::uint16_t tid, std::uint32_t op_kind = 0)
    {
        return {RecordType::OpBegin, 0, tid, op_kind, 0, 0};
    }

    /**
     * Build an operation-begin marker carrying an open-loop arrival
     * stamp: the request arrived at model cycle @p arrival and
     * belongs to latency class @p op_class. Replay engines with
     * request-latency tracking enabled (SimConfig::opClasses > 0)
     * measure queueing delay and arrival-to-completion latency
     * against the stamp; engines without it ignore the extra fields,
     * so stamped traces replay bit-identically on legacy configs.
     */
    static TraceRecord
    opBeginAt(std::uint16_t tid, std::uint32_t op_kind,
              std::uint64_t arrival, std::uint32_t op_class)
    {
        return {RecordType::OpBegin, kFlagOpArrival, tid, op_kind,
                arrival, op_class};
    }

    /** True for an OpBegin record carrying an arrival stamp. */
    bool
    hasArrival() const
    {
        return type == RecordType::OpBegin && (flags & kFlagOpArrival);
    }

    /** Build an operation-end marker. */
    static TraceRecord
    opEnd(std::uint16_t tid, std::uint32_t op_kind = 0)
    {
        return {RecordType::OpEnd, 0, tid, op_kind, 0, 0};
    }

    bool isMemAccess() const
    {
        return type == RecordType::Load || type == RecordType::Store;
    }

    bool isPmoAccess() const
    {
        return isMemAccess() && (flags & kFlagPmo);
    }

    Perm perm() const { return decodePermFlags(flags); }

    PageSize pageSize() const { return decodePageSizeFlags(flags); }

    bool operator==(const TraceRecord &) const = default;
};

static_assert(sizeof(TraceRecord) == 24, "TraceRecord must stay 24 bytes");

/** Short human-readable name of a record type. */
std::string recordTypeName(RecordType t);

/** One-line textual rendering of a record (debugging/tests). */
std::string toString(const TraceRecord &rec);

} // namespace pmodv::trace

#endif // PMODV_TRACE_RECORD_HH
