/**
 * @file
 * A bounded ring buffer of typed simulation events — the protection
 * layer's flight recorder. Schemes post the rare-but-decisive events
 * (key evictions, TLB shootdowns, PTLB/DTTLB refills) and the System
 * posts transaction commits; the ring keeps the most recent
 * `capacity` of them with their cycle timestamps, giving a replayable
 * timeline for debugging divergences between schemes.
 *
 * The ring is single-writer by construction (each replay pipeline
 * owns its System, which owns its ring) and uses no locks or atomics:
 * posting is one store plus two index bumps, cheap enough to leave on
 * in every run. When full, the oldest event is overwritten and
 * `dropped` counts it — the ring never grows and never blocks.
 *
 * The ring is also a stats::Group, so `recorded`/`dropped` appear in
 * the owning System's stats tree (and therefore in --json reports).
 */

#ifndef PMODV_TRACE_EVENT_RING_HH
#define PMODV_TRACE_EVENT_RING_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "stats/stats.hh"

namespace pmodv::trace
{

/** Kinds of events the ring records. */
enum class EventKind : std::uint8_t
{
    KeyEviction = 0, ///< A victim domain lost its protection key.
    Shootdown = 1,   ///< A ranged TLB invalidation was issued.
    PtlbRefill = 2,  ///< A PTLB miss was refilled from the PT.
    DttlbRefill = 3, ///< A DTTLB miss was refilled from the DTT.
    /**
     * A workload operation completed (OpEnd). `arg` carries the op's
     * identity — workloads stamp the primary domain of the operation
     * into the OpBegin/OpEnd aux field — and `value` the op's duration
     * in cycles, so exporters can render labelled transaction spans
     * (trace::PerfettoExporter).
     */
    TxnCommit = 4,
    /**
     * A remote core answered a shootdown broadcast and invalidated
     * stale entries (multi-core replay only). `arg` is the responding
     * core id, `value` the number of pages it flushed; `tid` is the
     * thread whose eviction initiated the broadcast.
     */
    Ipi = 5,
};

/** Stable snake_case name of @p kind (used in JSON reports). */
const char *eventKindName(EventKind kind);

/** One recorded event. */
struct Event
{
    Cycles cycle = 0;   ///< Owner's cycle count when posted.
    std::uint64_t value = 0; ///< Kind-specific payload (pages, cycles).
    /**
     * Monotone 1-based sequence number assigned by the owning ring:
     * the id equals the ring's `recorded` count at post time, so an id
     * always resolves to exactly one posted event even after the ring
     * overwrote the slot. Identity, not payload — equality below
     * deliberately ignores it.
     */
    std::uint64_t id = 0;
    /**
     * Request id of the in-flight tracked op when the event was
     * posted (0 = no request open). Set by the owning System via
     * EventRing::setCurrentRequest(); the blame layer uses it to hang
     * causal event chains off slow requests.
     */
    std::uint64_t req = 0;
    std::uint32_t arg = 0;   ///< Kind-specific id (domain, key).
    ThreadId tid = 0;
    EventKind kind = EventKind::KeyEviction;

    bool
    operator==(const Event &o) const
    {
        // Payload equality only: id/req are bookkeeping identities
        // (monotone counters), not part of what two replays must agree
        // on record-for-record.
        return cycle == o.cycle && value == o.value && arg == o.arg &&
               tid == o.tid && kind == o.kind;
    }
};

/** The bounded, overwrite-oldest event ring. */
class EventRing : public stats::Group
{
  public:
    EventRing(stats::Group *parent, std::string name = "events",
              std::size_t capacity = 256);

    /**
     * Timestamps come from @p clock (not owned; typically the owning
     * System's cycle counter). Unbound rings stamp 0.
     */
    void bindClock(const Cycles *clock) { clock_ = clock; }

    /** Record one event, overwriting the oldest when full. */
    void post(EventKind kind, ThreadId tid, std::uint32_t arg = 0,
              std::uint64_t value = 0);

    /**
     * Tag every subsequently posted event with request id @p req
     * (0 clears the tag). The owning System brackets each tracked
     * op's window with this so in-window events carry their request.
     */
    void setCurrentRequest(std::uint64_t req) { curReq_ = req; }

    /** The id handed to the most recently posted event (0 if none). */
    std::uint64_t lastId() const { return nextId_; }

    std::size_t capacity() const { return ring_.size(); }
    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }

    /** The @p i-th buffered event, oldest first (i < size()). */
    const Event &at(std::size_t i) const
    {
        return ring_[(head_ + i) % ring_.size()];
    }

    /** The buffered events, oldest first. */
    std::vector<Event> snapshot() const;

    /** snapshot(), then empty the ring (stats are kept). */
    std::vector<Event> drain();

    stats::Scalar recorded; ///< Events posted (including overwritten).
    stats::Scalar dropped;  ///< Events overwritten before being read.

  private:
    std::vector<Event> ring_;
    std::size_t head_ = 0; ///< Index of the oldest buffered event.
    std::size_t count_ = 0;
    const Cycles *clock_ = nullptr;
    std::uint64_t nextId_ = 0; ///< Last assigned event id (1-based).
    std::uint64_t curReq_ = 0; ///< Request tag for posted events.
};

} // namespace pmodv::trace

#endif // PMODV_TRACE_EVENT_RING_HH
