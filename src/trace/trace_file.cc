#include "trace/trace_file.hh"

#include "common/logging.hh"

namespace pmodv::trace
{

namespace
{

struct FileHeader
{
    std::uint32_t magic;
    std::uint32_t version;
    std::uint64_t count;
};

static_assert(sizeof(FileHeader) == 16, "trace header must stay 16 bytes");

} // namespace

TraceFileWriter::TraceFileWriter(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "wb");
    fatal_if(!file_, "cannot open trace file '%s' for writing",
             path.c_str());
    FileHeader hdr{kTraceMagic, kTraceVersion, 0};
    fatal_if(std::fwrite(&hdr, sizeof(hdr), 1, file_) != 1,
             "cannot write trace header to '%s'", path.c_str());
}

TraceFileWriter::~TraceFileWriter()
{
    if (!finished_)
        finish();
}

void
TraceFileWriter::put(const TraceRecord &rec)
{
    panic_if(finished_, "put() after finish() on trace writer");
    fatal_if(std::fwrite(&rec, sizeof(rec), 1, file_) != 1,
             "short write to trace file");
    ++count_;
}

void
TraceFileWriter::finish()
{
    if (finished_)
        return;
    finished_ = true;
    FileHeader hdr{kTraceMagic, kTraceVersion, count_};
    std::fseek(file_, 0, SEEK_SET);
    fatal_if(std::fwrite(&hdr, sizeof(hdr), 1, file_) != 1,
             "cannot patch trace header");
    std::fclose(file_);
    file_ = nullptr;
}

TraceFileReader::TraceFileReader(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "rb");
    fatal_if(!file_, "cannot open trace file '%s'", path.c_str());
    FileHeader hdr{};
    fatal_if(std::fread(&hdr, sizeof(hdr), 1, file_) != 1,
             "cannot read trace header from '%s'", path.c_str());
    fatal_if(hdr.magic != kTraceMagic,
             "'%s' is not a pmodv trace file (bad magic)", path.c_str());
    fatal_if(hdr.version != kTraceVersion,
             "trace file '%s' has unsupported version %u", path.c_str(),
             hdr.version);
    count_ = hdr.count;
}

TraceFileReader::~TraceFileReader()
{
    if (file_)
        std::fclose(file_);
}

bool
TraceFileReader::next(TraceRecord &rec)
{
    if (readSoFar_ >= count_)
        return false;
    if (std::fread(&rec, sizeof(rec), 1, file_) != 1)
        return false;
    ++readSoFar_;
    return true;
}

std::uint64_t
TraceFileReader::pump(TraceSink &sink)
{
    TraceRecord rec;
    std::uint64_t n = 0;
    while (next(rec)) {
        sink.put(rec);
        ++n;
    }
    sink.finish();
    return n;
}

std::vector<TraceRecord>
TraceFileReader::readAll()
{
    std::vector<TraceRecord> out;
    out.reserve(count_ - readSoFar_);
    TraceRecord rec;
    while (next(rec))
        out.push_back(rec);
    return out;
}

} // namespace pmodv::trace
