#include "trace/trace_file.hh"

#include <cerrno>
#include <cstring>

#include <sys/mman.h>
#include <sys/stat.h>

#include "common/logging.hh"

namespace pmodv::trace
{

namespace
{

/** The legacy v1 on-disk header. */
struct FileHeaderV1
{
    std::uint32_t magic;
    std::uint32_t version;
    std::uint64_t count;
};

static_assert(sizeof(FileHeaderV1) == kTraceHeaderBytesV1,
              "v1 trace header must stay 16 bytes");

/**
 * The v2 on-disk header. 128 bytes so the record body starts
 * 64-byte-aligned both on disk and in a page-aligned mmap. Embeds the
 * trace's full TraceSummary so `pmodv-trace info` and replay counters
 * never need to scan the body, and so view() can verify integrity.
 */
struct FileHeaderV2
{
    std::uint32_t magic;
    std::uint32_t version;
    std::uint64_t count;
    std::uint64_t checksum;
    std::uint64_t typeCounts[kNumRecordTypes];
    std::uint64_t instBlockInsts;
    std::uint64_t pmoAccesses;
    std::uint8_t pad[8];
};

static_assert(sizeof(FileHeaderV2) == kTraceHeaderBytesV2,
              "v2 trace header must stay 128 bytes");
static_assert(kTraceHeaderBytesV2 % kTraceBufferAlign == 0,
              "v2 record body must start cache-line aligned");

FileHeaderV2
makeHeader(const TraceSummary &summary)
{
    FileHeaderV2 hdr{};
    hdr.magic = kTraceMagic;
    hdr.version = kTraceVersion;
    hdr.count = summary.totalRecords();
    hdr.checksum = summary.checksum;
    for (std::size_t i = 0; i < kNumRecordTypes; ++i)
        hdr.typeCounts[i] = summary.counts[i];
    hdr.instBlockInsts = summary.instBlockInsts;
    hdr.pmoAccesses = summary.pmoAccesses;
    return hdr;
}

TraceSummary
summaryOfHeader(const FileHeaderV2 &hdr)
{
    TraceSummary summary;
    for (std::size_t i = 0; i < kNumRecordTypes; ++i)
        summary.counts[i] = hdr.typeCounts[i];
    summary.instBlockInsts = hdr.instBlockInsts;
    summary.pmoAccesses = hdr.pmoAccesses;
    summary.checksum = hdr.checksum;
    return summary;
}

/** Size of the open file in bytes (fatal on stat failure). */
std::uint64_t
fileSize(std::FILE *file, const std::string &path)
{
    struct stat st{};
    fatal_if(::fstat(::fileno(file), &st) != 0,
             "cannot stat trace file '%s': %s", path.c_str(),
             std::strerror(errno));
    return static_cast<std::uint64_t>(st.st_size);
}

} // namespace

TraceFileWriter::TraceFileWriter(const std::string &path) : path_(path)
{
    file_ = std::fopen(path.c_str(), "wb");
    fatal_if(!file_, "cannot open trace file '%s' for writing",
             path.c_str());
    // Placeholder header; finish() rewrites it with the real counts
    // and checksum.
    FileHeaderV2 hdr{};
    hdr.magic = kTraceMagic;
    hdr.version = kTraceVersion;
    fatal_if(std::fwrite(&hdr, sizeof(hdr), 1, file_) != 1,
             "cannot write trace header to '%s'", path.c_str());
}

TraceFileWriter::~TraceFileWriter()
{
    if (!finished_)
        finish();
}

void
TraceFileWriter::put(const TraceRecord &rec)
{
    fatal_if(finished_, "put() after finish() on trace writer '%s'",
             path_.c_str());
    fatal_if(std::fwrite(&rec, sizeof(rec), 1, file_) != 1,
             "short write to trace file '%s': %s", path_.c_str(),
             std::strerror(errno));
    summary_.add(rec);
}

void
TraceFileWriter::finish()
{
    if (finished_)
        return;
    finished_ = true;
    FileHeaderV2 hdr = makeHeader(summary_);
    fatal_if(std::fseek(file_, 0, SEEK_SET) != 0,
             "cannot seek to trace header in '%s': %s", path_.c_str(),
             std::strerror(errno));
    fatal_if(std::fwrite(&hdr, sizeof(hdr), 1, file_) != 1,
             "cannot patch trace header in '%s': %s", path_.c_str(),
             std::strerror(errno));
    fatal_if(std::fflush(file_) != 0,
             "cannot flush trace file '%s': %s", path_.c_str(),
             std::strerror(errno));
    fatal_if(std::fclose(file_) != 0,
             "cannot close trace file '%s': %s", path_.c_str(),
             std::strerror(errno));
    file_ = nullptr;
}

TraceFileReader::TraceFileReader(const std::string &path) : path_(path)
{
    file_ = std::fopen(path.c_str(), "rb");
    fatal_if(!file_, "cannot open trace file '%s'", path.c_str());

    // Both formats share the first 16 bytes {magic, version, count}.
    FileHeaderV1 base{};
    fatal_if(std::fread(&base, sizeof(base), 1, file_) != 1,
             "cannot read trace header from '%s'", path.c_str());
    fatal_if(base.magic != kTraceMagic,
             "'%s' is not a pmodv trace file (bad magic)", path.c_str());

    version_ = base.version;
    count_ = base.count;
    if (version_ == kTraceVersion) {
        headerBytes_ = kTraceHeaderBytesV2;
        FileHeaderV2 hdr{};
        std::memcpy(&hdr, &base, sizeof(base));
        fatal_if(std::fread(reinterpret_cast<char *>(&hdr) + sizeof(base),
                            sizeof(hdr) - sizeof(base), 1, file_) != 1,
                 "truncated v2 trace header in '%s'", path.c_str());
        headerSummary_ = summaryOfHeader(hdr);
        fatal_if(headerSummary_.totalRecords() != count_,
                 "corrupt trace header in '%s': record count %llu "
                 "disagrees with per-type counts (%llu)",
                 path.c_str(),
                 static_cast<unsigned long long>(count_),
                 static_cast<unsigned long long>(
                     headerSummary_.totalRecords()));
    } else if (version_ == kTraceVersionLegacy) {
        headerBytes_ = kTraceHeaderBytesV1;
    } else {
        fatal("trace file '%s' has unsupported version %u", path.c_str(),
              version_);
    }

    const std::uint64_t need =
        headerBytes_ + count_ * sizeof(TraceRecord);
    const std::uint64_t have = fileSize(file_, path_);
    fatal_if(have < need,
             "truncated trace file '%s': header promises %llu records "
             "(%llu bytes) but only %llu bytes are present",
             path.c_str(), static_cast<unsigned long long>(count_),
             static_cast<unsigned long long>(need),
             static_cast<unsigned long long>(have));
}

TraceFileReader::~TraceFileReader()
{
    if (file_)
        std::fclose(file_);
}

std::shared_ptr<const TraceBuffer>
TraceFileReader::loadIntoArena()
{
    // Decode-on-load: stream every record through an arena copy.
    // Used for v1 files and as the fallback when mmap fails.
    std::vector<TraceRecord> records;
    records.reserve(count_);
    if (count_ != 0) {
        fatal_if(std::fseek(file_, static_cast<long>(headerBytes_),
                            SEEK_SET) != 0,
                 "cannot seek in trace file '%s'", path_.c_str());
        records.resize(count_);
        fatal_if(std::fread(records.data(), sizeof(TraceRecord), count_,
                            file_) != count_,
                 "truncated trace file '%s'", path_.c_str());
        fatal_if(std::fseek(file_,
                            static_cast<long>(
                                headerBytes_ +
                                readSoFar_ * sizeof(TraceRecord)),
                            SEEK_SET) != 0,
                 "cannot seek in trace file '%s'", path_.c_str());
    }
    return TraceBuffer::fromRecords(std::move(records));
}

std::shared_ptr<const TraceBuffer>
TraceFileReader::view()
{
    std::shared_ptr<const TraceBuffer> buf;
    if (version_ == kTraceVersion) {
        const std::size_t map_bytes =
            headerBytes_ + count_ * sizeof(TraceRecord);
        void *map = ::mmap(nullptr, map_bytes, PROT_READ, MAP_PRIVATE,
                           ::fileno(file_), 0);
        if (map != MAP_FAILED) {
            const auto *records = reinterpret_cast<const TraceRecord *>(
                static_cast<const char *>(map) + headerBytes_);
            buf = TraceBuffer::adoptMapping(map, map_bytes, records,
                                            count_, headerSummary_);
        } else {
            buf = loadIntoArena();
        }
        // Verify the body against the header before anyone replays
        // from it. A full recompute also covers the arena fallback.
        TraceSummary actual;
        for (const TraceRecord &rec : buf->records())
            actual.add(rec);
        fatal_if(actual.checksum != headerSummary_.checksum,
                 "trace file '%s' failed checksum verification "
                 "(header %016llx, body %016llx)",
                 path_.c_str(),
                 static_cast<unsigned long long>(headerSummary_.checksum),
                 static_cast<unsigned long long>(actual.checksum));
        fatal_if(!actual.matches(headerSummary_),
                 "trace file '%s' is corrupt: body statistics disagree "
                 "with the header summary", path_.c_str());
    } else {
        buf = loadIntoArena();
    }
    return buf;
}

bool
TraceFileReader::next(TraceRecord &rec)
{
    if (readSoFar_ >= count_)
        return false;
    if (std::fread(&rec, sizeof(rec), 1, file_) != 1)
        return false;
    ++readSoFar_;
    return true;
}

} // namespace pmodv::trace
