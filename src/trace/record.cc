#include "trace/record.hh"

#include <sstream>

namespace pmodv::trace
{

std::string
recordTypeName(RecordType t)
{
    switch (t) {
      case RecordType::InstBlock:
        return "inst";
      case RecordType::Load:
        return "load";
      case RecordType::Store:
        return "store";
      case RecordType::SetPerm:
        return "setperm";
      case RecordType::Wrpkru:
        return "wrpkru";
      case RecordType::Attach:
        return "attach";
      case RecordType::Detach:
        return "detach";
      case RecordType::ThreadSwitch:
        return "thread_switch";
      case RecordType::OpBegin:
        return "op_begin";
      case RecordType::OpEnd:
        return "op_end";
    }
    return "unknown";
}

std::string
toString(const TraceRecord &rec)
{
    std::ostringstream os;
    os << recordTypeName(rec.type) << " tid=" << rec.tid;
    switch (rec.type) {
      case RecordType::InstBlock:
        os << " count=" << rec.aux;
        break;
      case RecordType::Load:
      case RecordType::Store:
        os << " addr=0x" << std::hex << rec.addr << std::dec
           << " size=" << rec.aux
           << (rec.flags & kFlagPmo ? " pmo" : "");
        break;
      case RecordType::SetPerm:
        os << " domain=" << rec.aux << " perm=" << permToString(rec.perm());
        break;
      case RecordType::Wrpkru:
        os << " key=" << rec.aux << " perm=" << permToString(rec.perm());
        break;
      case RecordType::Attach:
        os << " domain=" << rec.aux << " base=0x" << std::hex << rec.addr
           << std::dec << " size=" << rec.value
           << " perm=" << permToString(rec.perm());
        break;
      case RecordType::Detach:
        os << " domain=" << rec.aux;
        break;
      case RecordType::ThreadSwitch:
        os << " to=" << rec.aux;
        break;
      case RecordType::OpBegin:
      case RecordType::OpEnd:
        os << " kind=" << rec.aux;
        break;
    }
    return os.str();
}

} // namespace pmodv::trace
