/**
 * @file
 * Trace sinks: consumers of TraceRecord streams. Workload generators
 * push records into a TraceSink; sinks include in-memory buffers,
 * fan-out to several replay pipelines, and counting sinks for trace
 * statistics (switch rates, access mixes).
 */

#ifndef PMODV_TRACE_SINKS_HH
#define PMODV_TRACE_SINKS_HH

#include <cstdint>
#include <span>
#include <vector>

#include "trace/buffer.hh"
#include "trace/record.hh"

namespace pmodv::trace
{

/** Abstract consumer of a trace stream. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Consume one record. */
    virtual void put(const TraceRecord &rec) = 0;

    /** Signal end-of-trace. */
    virtual void finish() {}
};

/** A sink that discards everything (for dry runs). */
class NullSink : public TraceSink
{
  public:
    void put(const TraceRecord &) override {}
};

/** Buffers the whole trace in memory for repeated replay. */
class VectorSink : public TraceSink
{
  public:
    void put(const TraceRecord &rec) override { records_.push_back(rec); }

    const std::vector<TraceRecord> &records() const { return records_; }
    std::vector<TraceRecord> take() { return std::move(records_); }
    void clear() { records_.clear(); }

  private:
    std::vector<TraceRecord> records_;
};

/** Replicates each record to several downstream sinks. */
class FanoutSink : public TraceSink
{
  public:
    /** Register a downstream sink (not owned). */
    void addSink(TraceSink *sink) { sinks_.push_back(sink); }

    void
    put(const TraceRecord &rec) override
    {
        for (TraceSink *s : sinks_)
            s->put(rec);
    }

    void
    finish() override
    {
        for (TraceSink *s : sinks_)
            s->finish();
    }

  private:
    std::vector<TraceSink *> sinks_;
};

/**
 * Accumulates summary statistics of a trace: counts per record type,
 * instruction totals and permission-switch counts. Used to report the
 * "switches/sec" columns of Tables V/VI.
 */
class CountingSink : public TraceSink
{
  public:
    void put(const TraceRecord &rec) override;

    /** Fold a whole batch of records into the counters. */
    void addBatch(std::span<const TraceRecord> records);

    /** Fold a precomputed TraceSummary (e.g. a TraceBuffer's). */
    void addSummary(const TraceSummary &summary);

    std::uint64_t count(RecordType t) const
    {
        return counts_[static_cast<std::size_t>(t)];
    }

    /** Total dynamic instructions: blocks + mem accesses + switches. */
    std::uint64_t totalInstructions() const;

    /** Total load+store records. */
    std::uint64_t memAccesses() const
    {
        return count(RecordType::Load) + count(RecordType::Store);
    }

    /** Load+store records targeting PMO memory. */
    std::uint64_t pmoAccesses() const { return pmoAccesses_; }

    /** SETPERM + WRPKRU records (the paper's "switches"). */
    std::uint64_t permissionSwitches() const
    {
        return count(RecordType::SetPerm) + count(RecordType::Wrpkru);
    }

    /** Completed workload operations (OpEnd markers). */
    std::uint64_t operations() const { return count(RecordType::OpEnd); }

    void reset();

  private:
    std::uint64_t counts_[kNumRecordTypes] = {};
    std::uint64_t instBlockInsts_ = 0;
    std::uint64_t pmoAccesses_ = 0;
};

/**
 * Forwards records while also counting them; convenient for wrapping
 * a replay pipeline with trace statistics.
 */
class TeeCountingSink : public CountingSink
{
  public:
    explicit TeeCountingSink(TraceSink *downstream)
        : downstream_(downstream)
    {
    }

    void
    put(const TraceRecord &rec) override
    {
        CountingSink::put(rec);
        if (downstream_)
            downstream_->put(rec);
    }

    void
    finish() override
    {
        if (downstream_)
            downstream_->finish();
    }

  private:
    TraceSink *downstream_;
};

} // namespace pmodv::trace

#endif // PMODV_TRACE_SINKS_HH
