/**
 * @file
 * Chrome trace-event JSON export (the legacy JSON format Perfetto and
 * chrome://tracing both load). The exporter is a plain accumulator:
 * callers allocate one *track* per replay pipeline (each track
 * becomes a "process" in the UI, named via a process_name metadata
 * event) and append duration spans (ph "X"), instant events (ph "i")
 * and counter samples (ph "C") stamped in simulated cycles; the
 * exporter converts to the format's microsecond timebase with the
 * cycles-per-microsecond divisor it was built with.
 *
 * The class knows nothing about Systems or schemes — it is pure
 * format. exp::appendSystemTrack() is the bridge that turns one
 * replayed System (event ring + timeline) into a track.
 *
 * Events serialize eagerly into JSON fragments, so memory per event
 * is one small string and write() is a join — and the output is
 * byte-deterministic given the same append sequence, which the
 * executor guarantees by appending tracks during its single-threaded
 * row reduction (tests/test_timeline.cc compares --jobs 1 vs 4).
 */

#ifndef PMODV_TRACE_PERFETTO_HH
#define PMODV_TRACE_PERFETTO_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace pmodv::trace
{

/** Accumulates Chrome trace-event JSON ("traceEvents" array). */
class PerfettoExporter
{
  public:
    /** Numeric event arguments shown in the UI's detail pane. */
    using Args = std::vector<std::pair<std::string, double>>;

    /** @p cycles_per_usec converts cycle stamps to the format's
     *  microsecond timebase (freqGhz * 1000 for a simulated core). */
    explicit PerfettoExporter(double cycles_per_usec)
        : cyclesPerUsec_(cycles_per_usec > 0 ? cycles_per_usec : 1.0)
    {
    }

    /** Open a new track named @p name; returns its id (the "pid"). */
    int addTrack(const std::string &name);

    /** Complete span (ph "X") on @p track: [begin, begin+duration). */
    void span(int track, const std::string &name, std::uint64_t begin,
              std::uint64_t duration, ThreadId tid,
              const Args &args = {});

    /** Instant event (ph "i", thread scope). */
    void instant(int track, const std::string &name, std::uint64_t cycle,
                 ThreadId tid, const Args &args = {});

    /** Counter sample (ph "C"): @p name's value at @p cycle. */
    void counter(int track, const std::string &name, std::uint64_t cycle,
                 double value);

    /**
     * Flow arrow start (ph "s"). @p id pairs the start with its end:
     * both halves must use the same id, which therefore has to be
     * unique per arrow (blame flows use the ring event id). The UI
     * binds each half to the enclosing slice on its track at @p cycle.
     */
    void flowStart(int track, const std::string &name,
                   std::uint64_t cycle, ThreadId tid, std::uint64_t id);

    /** Flow arrow end (ph "f", binding point "e"); see flowStart(). */
    void flowEnd(int track, const std::string &name, std::uint64_t cycle,
                 ThreadId tid, std::uint64_t id);

    std::size_t numTracks() const { return numTracks_; }
    std::size_t numEvents() const { return events_.size(); }

    /** The complete document: {"traceEvents":[...],...}. */
    void write(std::ostream &os) const;
    std::string toString() const;

  private:
    std::string timestamp(std::uint64_t cycle) const;
    void appendArgs(std::string &out, const Args &args) const;

    double cyclesPerUsec_;
    int numTracks_ = 0;
    /** Pre-serialized JSON objects, in append order. */
    std::vector<std::string> events_;
};

} // namespace pmodv::trace

#endif // PMODV_TRACE_PERFETTO_HH
