/**
 * @file
 * Binary trace file I/O. Traces are captured once (expensive
 * workload execution) and replayed many times (one per scheme sweep
 * point), mirroring the paper's Pin-capture/Sniper-replay split.
 *
 * v2 format (current): a 128-byte section header {magic, version,
 * record count, full TraceSummary: per-type counts + instruction and
 * PMO-access totals + FNV-1a checksum} followed by packed
 * TraceRecords starting at a 64-byte-aligned offset. The body is
 * mmap-able: TraceFileReader::view() maps it read-only and wraps it
 * in a zero-copy TraceBuffer after verifying the checksum.
 *
 * v1 format (legacy, still readable): a 16-byte header {magic,
 * version, record count} followed by packed records. view() falls
 * back to decode-on-load, building an arena-backed TraceBuffer.
 */

#ifndef PMODV_TRACE_TRACE_FILE_HH
#define PMODV_TRACE_TRACE_FILE_HH

#include <cstdio>
#include <string>
#include <vector>

#include "trace/buffer.hh"
#include "trace/sinks.hh"

namespace pmodv::trace
{

/** Magic number identifying a pmodv trace file. */
inline constexpr std::uint32_t kTraceMagic = 0x564f4d50; // "PMOV"

/** Current trace format version. */
inline constexpr std::uint32_t kTraceVersion = 2;

/** The legacy format version (pre-TraceBuffer, no checksum). */
inline constexpr std::uint32_t kTraceVersionLegacy = 1;

/** Byte size of the v2 section header (64-byte-aligned body). */
inline constexpr std::size_t kTraceHeaderBytesV2 = 128;

/** Byte size of the legacy v1 header. */
inline constexpr std::size_t kTraceHeaderBytesV1 = 16;

/**
 * A TraceSink that streams records to a binary v2 trace file. Every
 * file operation is checked: short writes, flush and close failures
 * are fatal instead of silently truncating the trace, and put()
 * after finish() is a hard error.
 */
class TraceFileWriter : public TraceSink
{
  public:
    /** Open @p path for writing; fatal() on failure. */
    explicit TraceFileWriter(const std::string &path);
    ~TraceFileWriter() override;

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    void put(const TraceRecord &rec) override;

    /** Write the final section header and close the file. */
    void finish() override;

    std::uint64_t recordsWritten() const
    {
        return summary_.totalRecords();
    }

    /** The summary that finish() writes into the header. */
    const TraceSummary &summary() const { return summary_; }

  private:
    std::FILE *file_ = nullptr;
    std::string path_;
    TraceSummary summary_;
    bool finished_ = false;
};

/**
 * Reads a binary trace file (v1 or v2). view() is the intended entry
 * point: it loads the whole trace as an immutable TraceBuffer —
 * zero-copy via mmap for v2 files, decode-on-load for v1 — verified
 * against the header's checksum and counts. next() remains for
 * streaming consumers (dump).
 */
class TraceFileReader
{
  public:
    /** Open @p path; fatal() on failure or bad/truncated header. */
    explicit TraceFileReader(const std::string &path);
    ~TraceFileReader();

    TraceFileReader(const TraceFileReader &) = delete;
    TraceFileReader &operator=(const TraceFileReader &) = delete;

    /** Number of records the header claims. */
    std::uint64_t recordCount() const { return count_; }

    /** The file's format version (1 or 2). */
    std::uint32_t version() const { return version_; }

    /**
     * The header's TraceSummary (v2 only; nullptr for v1 files,
     * whose header carries no statistics).
     */
    const TraceSummary *headerSummary() const
    {
        return version_ == kTraceVersion ? &headerSummary_ : nullptr;
    }

    /**
     * Load the whole trace as an immutable shared TraceBuffer,
     * independent of the next() cursor. v2 bodies are mmap'ed
     * zero-copy (arena fallback when mmap is unavailable); v1 bodies
     * are decoded into an arena. fatal() on checksum or count
     * mismatch. May be called once per reader.
     */
    std::shared_ptr<const TraceBuffer> view();

    /** Read the next record into @p rec; false at end of trace. */
    bool next(TraceRecord &rec);

  private:
    std::shared_ptr<const TraceBuffer> loadIntoArena();

    std::FILE *file_ = nullptr;
    std::string path_;
    std::uint32_t version_ = 0;
    std::uint64_t count_ = 0;
    std::uint64_t readSoFar_ = 0;
    std::size_t headerBytes_ = 0;
    TraceSummary headerSummary_; ///< Valid for v2 files only.
};

} // namespace pmodv::trace

#endif // PMODV_TRACE_TRACE_FILE_HH
