/**
 * @file
 * Binary trace file I/O. Traces can be captured once (expensive
 * workload execution) and replayed many times (one per scheme sweep
 * point), mirroring the paper's Pin-capture/Sniper-replay split.
 *
 * Format: 16-byte header {magic, version, record count} followed by
 * packed TraceRecords.
 */

#ifndef PMODV_TRACE_TRACE_FILE_HH
#define PMODV_TRACE_TRACE_FILE_HH

#include <cstdio>
#include <string>
#include <vector>

#include "trace/sinks.hh"

namespace pmodv::trace
{

/** Magic number identifying a pmodv trace file. */
inline constexpr std::uint32_t kTraceMagic = 0x564f4d50; // "PMOV"

/** Current trace format version. */
inline constexpr std::uint32_t kTraceVersion = 1;

/** A TraceSink that streams records to a binary file. */
class TraceFileWriter : public TraceSink
{
  public:
    /** Open @p path for writing; fatal() on failure. */
    explicit TraceFileWriter(const std::string &path);
    ~TraceFileWriter() override;

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    void put(const TraceRecord &rec) override;

    /** Patch the header record count and close the file. */
    void finish() override;

    std::uint64_t recordsWritten() const { return count_; }

  private:
    std::FILE *file_ = nullptr;
    std::uint64_t count_ = 0;
    bool finished_ = false;
};

/** Reads a binary trace file and pumps it into a sink. */
class TraceFileReader
{
  public:
    /** Open @p path; fatal() on failure or bad header. */
    explicit TraceFileReader(const std::string &path);
    ~TraceFileReader();

    TraceFileReader(const TraceFileReader &) = delete;
    TraceFileReader &operator=(const TraceFileReader &) = delete;

    /** Number of records the header claims. */
    std::uint64_t recordCount() const { return count_; }

    /** Read the next record into @p rec; false at end of trace. */
    bool next(TraceRecord &rec);

    /** Stream every remaining record into @p sink (calls finish()). */
    std::uint64_t pump(TraceSink &sink);

    /** Read the whole remaining trace into a vector. */
    std::vector<TraceRecord> readAll();

  private:
    std::FILE *file_ = nullptr;
    std::uint64_t count_ = 0;
    std::uint64_t readSoFar_ = 0;
};

} // namespace pmodv::trace

#endif // PMODV_TRACE_TRACE_FILE_HH
